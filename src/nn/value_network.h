// Neo's value network (paper Figure 5 / Appendix A).
//
// Architecture: the query-level encoding passes through fully connected
// layers; the final vector is concatenated onto every plan-tree node
// ("spatial replication"); the augmented forest passes through a stack of
// tree convolution layers; dynamic pooling flattens it; a final FC stack
// produces the scalar cost prediction.
//
// Channel widths are configurable: the paper uses 512/256/128 tree-conv
// filters; the default here is narrower so that the full RL loop runs on a
// laptop-scale substrate (see NeoConfig; benches can widen via --full).
//
// ---- Memory model (zero-alloc steady state) --------------------------------
//
// Serving and training steady states perform no heap allocation:
//  * Inference: every Predict*Into call threads an InferenceContext whose
//    per-layer conv outputs, pooled matrix, head pipeline buffers, and conv
//    scratch are capacity-reused (Matrix::Reshape never shrinks capacity).
//    After one call at each shape high-water mark, repeated calls allocate
//    nothing; post-activations are written exactly once per row (the
//    bias/suffix/side/leaky-ReLU epilogue is fused into the conv scatter,
//    and (Linear, LayerNorm, LeakyReLU) triples fuse in the FC stacks —
//    both bit-identical to the unfused passes).
//  * Training: TrainBatch packs the minibatch into member-owned buffers and
//    by default RETAINS all training scratch across steps (high-water
//    reuse); SetRetainTrainingScratch(false) restores per-step release —
//    loss curves are bit-identical either way. The former glibc
//    M_TRIM_THRESHOLD workaround is gone: with no steady-state frees there
//    is nothing to trim (NEO_NO_MALLOC_TUNING is deprecated and ignored).
//  * Verification: TrainBatch runs inside util::AllocRegionScope (as does
//    the search's NN-eval section); the bench harnesses report the counted
//    allocations as steady_state_heap_allocs and CI fails if nonzero after
//    warmup.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/nn/adam.h"
#include "src/nn/tree_conv.h"
#include "src/util/status.h"

namespace neo::nn {

struct ValueNetConfig {
  int query_dim = 0;  ///< Set by the featurizer.
  int plan_dim = 0;   ///< Set by the featurizer.
  std::vector<int> query_fc = {128, 64, 32};
  std::vector<int> tree_channels = {64, 32, 16};
  std::vector<int> head_fc = {32, 16};
  float leaky_alpha = 0.01f;
  AdamOptions adam;
  uint64_t seed = 0x5eedf00dULL;
};

/// One featurized (query, partial plan) pair.
struct PlanSample {
  Matrix query_vec;      ///< (1 x query_dim)
  TreeStructure tree;    ///< Forest structure (roots have no parent).
  Matrix node_features;  ///< (nodes x plan_dim)
};

/// N featurized plans of one query packed into a single forest so the whole
/// batch runs through each tree-conv layer and the FC head as one GEMM.
/// Plan i's nodes occupy feature rows [tree_offsets[i], tree_offsets[i+1]);
/// its child indices in `forest` are offset by tree_offsets[i].
struct PlanBatch {
  TreeStructure forest;           ///< Concatenated trees, offset child indices.
  Matrix node_features;           ///< (total nodes x plan_dim)
  std::vector<int> tree_offsets;  ///< size() + 1 monotone row offsets.
  /// Per node row: the plan node's subtree fingerprint (PlanNode::subtree_fp)
  /// — the key of the search's activation cache. Filled by
  /// Featurizer::EncodePlanBatch; empty when packed without plan identity
  /// (PackPlanBatch for training).
  std::vector<uint64_t> node_fp;
  /// Present-child gather lists for `forest`, built once by PackPlanBatch and
  /// shared by every training conv layer's forward AND backward (the forest
  /// structure is layer-invariant). Empty when the batch was packed by a
  /// producer that never trains on it (Featurizer::EncodePlanBatch).
  TreeGather gather;

  int size() const {
    return tree_offsets.empty() ? 0 : static_cast<int>(tree_offsets.size()) - 1;
  }
};

/// Packs per-sample (tree, node_features) pairs into one PlanBatch (query
/// vectors are ignored; batched prediction shares one query embedding, and
/// batched training re-associates embeddings per tree via tree_offsets).
PlanBatch PackPlanBatch(const PlanSample* const* samples, size_t n);
PlanBatch PackPlanBatch(const std::vector<const PlanSample*>& samples);

/// PackPlanBatch into an existing PlanBatch, reusing every buffer's capacity
/// (the zero-steady-state-allocation training form).
void PackPlanBatchInto(const PlanSample* const* samples, size_t n,
                       PlanBatch* out);

/// Per-node activation reuse for the incremental PredictBatch path. For node
/// row i of a packed forest:
///   cached[i] — non-null: every conv layer's post-activation row is served
///               from this buffer instead of being computed (layer l occupies
///               floats [sum of earlier out_channels, +out_channels_l) — the
///               concatenated layout of ValueNetwork::TotalConvChannels()
///               floats); null: the row is dirty and recomputed.
///   store[i]  — non-null (dirty rows only): the network writes the row's
///               computed post-activation values in the same concatenated
///               layout, so the caller can populate its activation cache.
/// Both vectors span all node rows. A cached row must have been produced by
/// this network at the current weight version for the same (query embedding,
/// subtree) — the caller's cache keying enforces that — and then the batch's
/// scores are bit-identical to a non-incremental PredictBatch.
struct ActivationReuse {
  std::vector<const float*> cached;
  std::vector<float*> store;
};

/// One query's scoring request inside a cross-query coalesced predict
/// (ValueNetwork::PredictBatchMulti): the query's embedding, its packed
/// candidate forest, and optionally that search's activation reuse spans.
struct MultiPredictItem {
  const Matrix* query_embedding = nullptr;  ///< (1 x embed dim)
  const PlanBatch* batch = nullptr;         ///< Non-empty packed candidates.
  const ActivationReuse* reuse = nullptr;   ///< Optional incremental reuse.
};

class ValueNetwork {
 public:
  /// Per-caller scratch for the inference paths. The network's inference is
  /// read-only after the weight split is synced, so N threads may run
  /// Predict*/EmbedQuery concurrently provided (a) each passes its own
  /// context and (b) no training runs at the same time (Neo's episode
  /// structure — retrain, then plan — guarantees that). Passing nullptr uses
  /// a network-owned default context, which is single-thread only.
  struct InferenceContext {
    std::vector<TreeConv::Scratch> conv_scratch;  ///< One per conv layer (lazy).
    std::vector<int> dirty_rows;  ///< Incremental-path row-list scratch.
    /// Capacity-reused forward buffers: per-conv-layer post-activation
    /// outputs, the pooled matrix, the FC-head pipeline scratch, and the
    /// head's (N x 1) score output. One warm call per shape high-water mark
    /// makes every later Predict*Into call heap-allocation-free.
    std::vector<Matrix> conv_out;
    Matrix pooled;
    Matrix scores;
    PipelineScratch head_pipe;
    /// Merge buffers for PredictBatchMulti (reused across coalesced calls).
    struct MultiScratch {
      TreeStructure forest;       ///< Concatenated multi-query forest.
      Matrix features;            ///< Concatenated node features.
      Matrix suffixes;            ///< (K x embed dim) stacked embeddings.
      std::vector<int> node_seg;  ///< Node row -> query segment.
      std::vector<int> offsets;   ///< Merged tree offsets.
      ActivationReuse reuse;      ///< Merged reuse spans.
    };
    MultiScratch multi;
  };

  explicit ValueNetwork(const ValueNetConfig& config);

  /// Predicted (normalized) cost of one sample.
  float Predict(const PlanSample& sample);

  /// Predict with a precomputed query embedding (search fast path: the
  /// query-level FC stack runs once per query, not once per candidate plan).
  float PredictWithEmbedding(const Matrix& query_embedding, const TreeStructure& tree,
                             const Matrix& node_features,
                             InferenceContext* ctx = nullptr);

  /// Batched inference over a packed forest sharing one query embedding: one
  /// forward pass scores all plans (each conv layer and the head run as a
  /// single large GEMM instead of N small ones; the per-layer GEMMs row-
  /// partition over the thread pool per nn::ComputeThreads()). Per-plan
  /// results match PredictWithEmbedding bit-for-bit at any thread count.
  std::vector<float> PredictBatch(const Matrix& query_embedding, const PlanBatch& batch,
                                  InferenceContext* ctx = nullptr,
                                  const ActivationReuse* reuse = nullptr);

  /// PredictBatch into a caller-owned score vector (resized; capacity-
  /// reused). Bit-identical to PredictBatch; with a warmed context and
  /// output this is the zero-steady-state-allocation serving form.
  void PredictBatchInto(const Matrix& query_embedding, const PlanBatch& batch,
                        InferenceContext* ctx, const ActivationReuse* reuse,
                        std::vector<float>* out);

  /// Cross-query coalesced inference: merges K queries' candidate batches
  /// into ONE forest (layer-0 suffixes segmented per query via
  /// TreeConv::ForwardInferenceMulti) so the whole group runs each conv layer
  /// and the FC head as one GEMM instead of K small ones. Scores come back
  /// concatenated in item order (items[0]'s plans first). Every per-plan
  /// score is BIT-IDENTICAL to the same item run alone through PredictBatch:
  /// GEMM rows are position-independent, the K suffix projections are rows of
  /// one multi-row GEMM, and pooling/head see per-segment row sets identical
  /// to the solo call's. n == 1 delegates to PredictBatch (including the
  /// reference-kernel path); n > 1 requires fast kernels. Items' reuse spans
  /// may be null per item (that item is scored all-dirty, nothing stored).
  std::vector<float> PredictBatchMulti(const MultiPredictItem* items, size_t n,
                                       InferenceContext* ctx = nullptr);

  /// PredictBatchMulti into a caller-owned score vector (see
  /// PredictBatchInto).
  void PredictBatchMultiInto(const MultiPredictItem* items, size_t n,
                             InferenceContext* ctx, std::vector<float>* out);

  /// Floats per node of a concatenated all-conv-layer activation entry (the
  /// ActivationReuse buffer size): sum of the conv stack's out_channels.
  int TotalConvChannels() const { return total_conv_channels_; }

  /// Convenience overload packing per-sample trees/features on the fly.
  std::vector<float> PredictBatch(const Matrix& query_embedding,
                                  const std::vector<const PlanSample*>& samples);

  /// Runs the query-level FC stack only (stateless; thread-safe).
  Matrix EmbedQuery(const Matrix& query_vec) const;

  /// EmbedQuery into a caller-owned output through caller-owned pipeline
  /// scratch (bit-identical; zero allocations once warm; thread-safe when
  /// each caller passes its own scratch and output).
  void EmbedQueryInto(const Matrix& query_vec, PipelineScratch* scratch,
                      Matrix* out) const;

  /// One SGD step over a minibatch; returns mean squared error before the
  /// update. Default path: the whole minibatch is packed into one forest
  /// (PackPlanBatch) and the forward/backward run as a handful of large
  /// GEMMs whose rows partition over the thread pool; predictions (and thus
  /// the returned loss) are bit-identical to the per-sample path and to any
  /// ComputeThreads() setting.
  float TrainBatch(const std::vector<const PlanSample*>& samples,
                   const std::vector<float>& targets);

  /// Span overload: trains on samples[0..n) / targets[0..n) without the
  /// caller materializing per-minibatch vector copies.
  float TrainBatch(const PlanSample* const* samples, const float* targets, size_t n);

  /// Reverts TrainBatch to the per-sample forward/backward loop (seed path;
  /// bench baseline). Gradients match the packed path mathematically but
  /// differ in summation order by accumulation ulps.
  void SetBatchedTraining(bool batched) { batched_training_ = batched; }
  bool batched_training() const { return batched_training_; }

  /// Increments on every optimizer step; lets caches detect staleness.
  uint64_t version() const { return version_; }

  /// Peak bytes of batch-sized training scratch observed across TrainBatch
  /// calls: per-layer pre/post activations, the packed forest features, and
  /// every layer's Backward caches, sampled at the backward's point of
  /// maximal liveness. By default the scratch is RETAINED across steps
  /// (high-water reuse — the steady-state training step allocates nothing);
  /// SetRetainTrainingScratch(false) restores the per-step release, after
  /// which current_training_scratch_bytes() is 0 between steps. Results are
  /// bit-identical either way (every reused element is fully overwritten).
  size_t peak_training_scratch_bytes() const { return peak_train_scratch_; }
  void ResetPeakTrainingScratch() { peak_train_scratch_ = 0; }
  /// Layer-cache scratch currently held (0 after a completed TrainBatch only
  /// when scratch retention is off).
  size_t current_training_scratch_bytes() const;

  /// When true (default), training scratch survives optimizer steps so the
  /// steady state performs zero heap allocations; false releases it after
  /// every step (the pre-arena behavior — memory-frugal, allocation-churny).
  void SetRetainTrainingScratch(bool retain) { retain_training_scratch_ = retain; }
  bool retain_training_scratch() const { return retain_training_scratch_; }

  /// Per-conv-layer training counters (flops, gather bytes, skipped rows)
  /// accumulated since the last reset; index = conv stack position.
  std::vector<TreeConv::TrainStats> ConvTrainStats() const;
  void ResetConvTrainStats();

  const ValueNetConfig& config() const { return config_; }
  size_t NumParameters() const;

  /// Serializes all weights to a binary file: magic + format version +
  /// parameter dims/blobs + a trailing FNV-1a checksum over the payload, so
  /// a truncated or bit-flipped checkpoint is detected at load time instead
  /// of silently loading garbage. A trained optimizer can thus be shipped
  /// and reloaded without re-running the RL loop.
  util::Status SaveWeights(const std::string& path) const;

  /// Loads weights saved by SaveWeights. The network must have been
  /// constructed with the same architecture. Errors: kNotFound (no such
  /// file), kDataLoss (bad magic / truncation / checksum mismatch),
  /// kFailedPrecondition (architecture mismatch). The weight version is
  /// bumped even on failure — a partial read may have overwritten
  /// parameters, and every weight-derived cache keys off version().
  util::Status LoadWeights(const std::string& path);

  /// In-memory copy of every parameter plus the Adam moments — the unit the
  /// model-health monitor's snapshot ring stores and rolls back to. Cheap
  /// relative to training (one memcpy of ~NumParameters() floats x3).
  struct WeightSnapshot {
    std::vector<Matrix> params;
    std::vector<Matrix> adam_m;
    std::vector<Matrix> adam_v;
    int64_t adam_steps = 0;
    uint64_t version = 0;  ///< Weight version the snapshot was taken at.
    bool empty() const { return params.empty(); }
  };

  void CaptureSnapshot(WeightSnapshot* snap) const;

  /// Restores a snapshot captured from this network. Bumps version() and
  /// invalidates the packed inference weights (same discipline as
  /// LoadWeights), so every score/activation cache keyed on the net version
  /// drops its entries instead of serving values from the rolled-back-over
  /// weights.
  void RestoreSnapshot(const WeightSnapshot& snap);

  /// True if any parameter holds a NaN or Inf (a diverged or corrupted
  /// optimizer step). Scans all weights; intended for per-retrain health
  /// checks, not per-minibatch hot loops.
  bool HasNonFiniteParams() const;

  /// Deterministically poisons a few weight elements with NaN (keyed by
  /// `key`), bumping version() like any other weight mutation. Fault-
  /// injection hook for the guardrail harness — simulates a corrupting
  /// optimizer step so the health monitor's detection/rollback is testable.
  void DebugPoisonWeights(uint64_t key);

 private:
  struct ForwardState {
    Matrix augmented;                ///< (nodes x aug_dim)
    /// Post-activation outputs per conv layer. Pre-activations are NOT kept:
    /// leaky ReLU preserves sign (alpha > 0), so the backward's relu mask
    /// tests post < 0 — one fewer batch-sized copy per layer.
    std::vector<Matrix> conv_post;
    TreeGather gather;               ///< Child gather lists for the tree.
  };

  /// Forward through tree conv + pooling + head. Fills `state` if training.
  float ForwardPlan(const Matrix& query_embedding, const TreeStructure& tree,
                    const Matrix& node_features, ForwardState* state,
                    InferenceContext* ctx = nullptr);

  /// Spatial replication: node features with the query embedding appended.
  Matrix AugmentNodes(const Matrix& query_embedding, const Matrix& node_features) const;

  /// Re-splits every conv layer's inference weights if training or weight
  /// loading bumped version_ since the last inference call. Thread-safe
  /// (double-checked mutex), so concurrent searches may race to the first
  /// inference after a retrain.
  void SyncInferenceWeights();

  /// Fast-inference conv stack + segmented pooling shared by PredictBatch
  /// and the single-plan prediction path (offsets {0, n} for one tree).
  /// `reuse`, when non-null, serves cached rows and computes only dirty ones
  /// (see ActivationReuse). Writes the pooled (N x C) matrix into `pooled`
  /// (a ctx buffer — capacity-reused); every conv layer runs the fused
  /// bias/suffix/side/leaky-ReLU epilogue, so with a warmed ctx the whole
  /// pass performs zero heap allocations.
  void InferencePooledInto(const TreeStructure& tree,
                           const Matrix& node_features,
                           const Matrix& query_embedding,
                           const std::vector<int>& offsets,
                           InferenceContext* ctx, const ActivationReuse* reuse,
                           Matrix* pooled);

  /// Multi-query mirror of InferencePooledInto: layer 0 runs the segmented-
  /// suffix TreeConv::ForwardInference[Rows]Multi[Into]; deeper layers (no
  /// suffix) run the unmodified single-forest functions over the merged
  /// forest.
  void InferencePooledMultiInto(const TreeStructure& tree,
                                const Matrix& node_features,
                                const Matrix& suffixes,
                                const std::vector<int>& node_seg,
                                const std::vector<int>& offsets,
                                InferenceContext* ctx,
                                const ActivationReuse* reuse, Matrix* pooled);

  /// The legacy per-sample training loop (SetBatchedTraining(false)).
  float TrainBatchPerSample(const PlanSample* const* samples, const float* targets,
                            size_t n);

  /// Packed-forest training step: one forward/backward over the whole batch.
  float TrainBatchPacked(const PlanSample* const* samples, const float* targets,
                         size_t n);

  /// The seed-path packed step (dense augment + concat conv), kept verbatim
  /// for SetUseReferenceKernels(true) benches.
  float TrainBatchPackedReference(const PlanSample* const* samples,
                                  const float* targets, size_t n);

  /// In-place leaky ReLU (the inter-conv activation), row-partitioned over
  /// the pool when ComputeThreads() > 1.
  void ApplyLeakyReLU(Matrix* m) const;

  /// Records `live_bytes` (+ the layers' own caches) into the peak-scratch
  /// high-water mark, then releases every layer's training scratch.
  void NoteScratchPeakAndRelease(size_t live_bytes);

  /// All trainable parameters in CollectParams order (query stack, conv
  /// stack, head) — the canonical ordering shared by Save/LoadWeights, the
  /// Adam constructor, and the snapshot ring.
  std::vector<Param*> AllParams() const;

  ValueNetConfig config_;
  util::Rng rng_;
  Sequential query_stack_;
  std::vector<TreeConv> convs_;
  DynamicPooling pool_;
  Sequential head_;
  std::unique_ptr<Adam> adam_;
  uint64_t version_ = 0;
  std::atomic<uint64_t> inference_weights_version_{~0ULL};
  std::mutex inference_sync_mu_;
  InferenceContext default_ctx_;
  /// Shared gather/GEMM scratch for the training conv stack, reused across
  /// layers and steps; retained by default (see SetRetainTrainingScratch).
  TreeConv::TrainScratch train_scratch_;
  /// Member-owned TrainBatchPacked buffers (capacity-reused across steps so
  /// the steady-state training step performs zero heap allocations; released
  /// only when scratch retention is off).
  PlanBatch train_batch_;            ///< Packed minibatch forest.
  Matrix train_query_vecs_;          ///< (B x query_dim) stacked query vecs.
  Matrix train_embeds_;              ///< (B x embed_dim) query embeddings.
  std::vector<int> train_node_seg_;  ///< Node row -> sample index.
  std::vector<Matrix> train_post_;   ///< Per-conv-layer post-activations.
  Matrix train_pooled_;              ///< Pooled (B x C) forward output.
  Matrix train_head_out_;            ///< Head (B x 1) predictions.
  Matrix train_grad_out_;            ///< (B x 1) dLoss/dPred.
  Matrix train_grad_pooled_;         ///< Pool-backward input gradient.
  Matrix train_grad_nodes_;          ///< Node-gradient ping buffer.
  Matrix train_grad_nodes_tmp_;      ///< Node-gradient pong buffer.
  Matrix train_grad_embeds_;         ///< (B x embed_dim) embedding grads.
  Matrix train_grad_query_;          ///< Query-stack input gradient (unused).
  PipelineScratch train_pipe_;       ///< Query/head pipeline ping-pong bufs.
  bool retain_training_scratch_ = true;
  bool batched_training_ = true;
  float leaky_alpha_;
  int embed_dim_ = 0;
  int total_conv_channels_ = 0;
  size_t peak_train_scratch_ = 0;
};

}  // namespace neo::nn
