// Neural network layers with explicit forward/backward passes. The batch
// dimension is the matrix row dimension; every layer caches what it needs
// from the last Forward call for the matching Backward call.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/matrix.h"

namespace neo::nn {

/// A trainable parameter: value + gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;

  void ZeroGrad() { grad.Zero(); }
};

/// Concrete layer type, for the pipeline-level fusion in Sequential (a
/// (Linear, LayerNorm, LeakyReLU) triple collapses into GEMM + one per-row
/// epilogue pass). Types not participating in fusion report kOther.
enum class LayerKind { kLinear, kLayerNorm, kLeakyReLU, kOther };

class Layer {
 public:
  virtual ~Layer() = default;

  /// x: (batch x in_dim) -> (batch x out_dim).
  virtual Matrix Forward(const Matrix& x) = 0;

  /// Same math as Forward but caches nothing, so it is const and safe to
  /// call concurrently from many threads (provided no concurrent training
  /// mutates the parameters). Cannot be followed by Backward.
  virtual Matrix ForwardInference(const Matrix& x) const = 0;

  /// grad_out: (batch x out_dim) -> grad_in (batch x in_dim); accumulates
  /// parameter gradients.
  virtual Matrix Backward(const Matrix& grad_out) = 0;

  /// Into-forms of the three passes above, bit-identical to them, writing a
  /// caller-owned output (Reshape'd: capacity-reused, so a warmed output
  /// makes the steady state allocation-free). The output must not alias the
  /// input. The base fallbacks allocate via the Matrix-returning forms; the
  /// concrete layers all override with true in-place-capacity versions.
  virtual void ForwardInto(const Matrix& x, Matrix* y) { *y = Forward(x); }
  virtual void ForwardInferenceInto(const Matrix& x, Matrix* y) const {
    *y = ForwardInference(x);
  }
  virtual void BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
    *grad_in = Backward(grad_out);
  }

  virtual LayerKind kind() const { return LayerKind::kOther; }

  /// Appends this layer's trainable parameters.
  virtual void CollectParams(std::vector<Param*>* /*out*/) {}

  /// Rebuilds any inference-only weight copies (e.g. Linear's dispatch-packed
  /// weight) from the live parameters. ValueNetwork::SyncInferenceWeights
  /// calls this once per weight version; layers without such copies no-op.
  virtual void RefreshInferenceWeights() {}

  /// Marks inference-only weight copies stale after the live parameters were
  /// mutated outside Backward (weight loading). ForwardInference then falls
  /// back to the live parameters until the next refresh — same results,
  /// without the pre-packed fast path.
  virtual void InvalidateInferenceWeights() {}

  /// Drops batch-sized activations cached by Forward for Backward (e.g.
  /// Linear's last input). ValueNetwork calls this after every optimizer
  /// step so training scratch never outlives the minibatch that produced
  /// it; the next Forward simply re-caches. Layers without such caches
  /// no-op.
  virtual void ReleaseTrainingScratch() {}

  /// Bytes of training scratch currently held (for the peak-scratch
  /// accounting ValueNetwork reports).
  virtual size_t TrainingScratchBytes() const { return 0; }
};

/// Fully connected: y = x W + b.
class Linear : public Layer {
 public:
  Linear(int in_dim, int out_dim, util::Rng& rng);

  Matrix Forward(const Matrix& x) override;
  Matrix ForwardInference(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  void ForwardInto(const Matrix& x, Matrix* y) override;
  void ForwardInferenceInto(const Matrix& x, Matrix* y) const override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void CollectParams(std::vector<Param*>* out) override {
    out->push_back(&weight_);
    out->push_back(&bias_);
  }
  void RefreshInferenceWeights() override;
  void InvalidateInferenceWeights() override { packed_fresh_ = false; }
  void ReleaseTrainingScratch() override { last_input_ = Matrix(); }
  size_t TrainingScratchBytes() const override {
    return last_input_.Size() * sizeof(float);
  }
  LayerKind kind() const override { return LayerKind::kLinear; }

  int in_dim() const { return weight_.value.rows(); }
  int out_dim() const { return weight_.value.cols(); }

  /// The bare GEMM (no bias), packed copy when fresh. Building block for the
  /// fused (Linear, LayerNorm, LeakyReLU) inference pass in Sequential.
  void GemmInto(const Matrix& x, Matrix* y) const;
  const float* bias_row() const { return bias_.value.Row(0); }

 private:
  /// y = x W + b. `use_packed` selects the pre-packed weight copy (bit-
  /// identical to the live weight; see PackedB) — only valid while fresh.
  Matrix Apply(const Matrix& x, bool use_packed) const;
  void ApplyInto(const Matrix& x, bool use_packed, Matrix* y) const;

  Param weight_;  ///< (in x out)
  Param bias_;    ///< (1 x out)
  /// weight_.value pre-packed for the GEMM dispatch arms; stale (and unused)
  /// whenever packed_fresh_ is false. Forward always uses the live weights so
  /// direct parameter pokes (numeric gradient checks, Adam) stay visible.
  PackedB packed_weight_;
  bool packed_fresh_ = false;
  Matrix last_input_;
  /// Cross-call GEMM pack/staging buffers (growth-only): the unpacked-weight
  /// GEMMs (training forward/backward) reuse them so steady-state steps make
  /// no heap allocations. Mutable because inference-const paths share them;
  /// Linear is not const-thread-safe anyway (see ValueNetwork's contexts).
  mutable GemmScratch gemm_scratch_;
};

/// Leaky rectified linear unit (paper §6.1 uses the leaky variant).
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.01f) : alpha_(alpha) {}

  Matrix Forward(const Matrix& x) override;
  Matrix ForwardInference(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  void ForwardInto(const Matrix& x, Matrix* y) override;
  void ForwardInferenceInto(const Matrix& x, Matrix* y) const override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ReleaseTrainingScratch() override { last_input_ = Matrix(); }
  size_t TrainingScratchBytes() const override {
    return last_input_.Size() * sizeof(float);
  }
  LayerKind kind() const override { return LayerKind::kLeakyReLU; }

  float alpha() const { return alpha_; }

 private:
  float alpha_;
  Matrix last_input_;
};

/// Layer normalization over the feature dimension with learned gain/bias
/// (paper §6.1 uses layer norm to stabilize training).
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int dim);

  Matrix Forward(const Matrix& x) override;
  Matrix ForwardInference(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  void ForwardInto(const Matrix& x, Matrix* y) override;
  void ForwardInferenceInto(const Matrix& x, Matrix* y) const override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  LayerKind kind() const override { return LayerKind::kLayerNorm; }
  void CollectParams(std::vector<Param*>* out) override {
    out->push_back(&gain_);
    out->push_back(&bias_);
  }
  void ReleaseTrainingScratch() override {
    last_norm_ = Matrix();
    last_inv_std_.clear();
    last_inv_std_.shrink_to_fit();
    dxhat_scratch_.clear();
    dxhat_scratch_.shrink_to_fit();
  }
  size_t TrainingScratchBytes() const override {
    return last_norm_.Size() * sizeof(float) +
           (last_inv_std_.size() + dxhat_scratch_.size()) * sizeof(float);
  }

  static constexpr float kEps = 1e-5f;

  const float* gain_row() const { return gain_.value.Row(0); }
  const float* bias_row() const { return bias_.value.Row(0); }

 private:
  Param gain_;
  Param bias_;
  Matrix last_norm_;  ///< Normalized activations.
  std::vector<float> last_inv_std_;
  std::vector<float> dxhat_scratch_;  ///< Backward row buffer (hoisted alloc).
};

/// Ping-pong buffers threading activations through a Sequential's layers
/// plus the fused-triple GEMM staging buffer. Caller-owned and capacity-
/// reused: after one warm pass, pipeline forwards allocate nothing. Not
/// thread-safe — one per caller (concurrent inference passes each bring
/// their own).
struct PipelineScratch {
  Matrix a;
  Matrix b;
  Matrix fused;

  size_t Bytes() const {
    return (a.Size() + b.Size() + fused.Size()) * sizeof(float);
  }
};

/// Layer pipeline.
class Sequential : public Layer {
 public:
  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix Forward(const Matrix& x) override;
  Matrix ForwardInference(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  using Layer::BackwardInto;
  using Layer::ForwardInferenceInto;
  using Layer::ForwardInto;
  void CollectParams(std::vector<Param*>* out) override;
  void RefreshInferenceWeights() override;
  void InvalidateInferenceWeights() override;
  void ReleaseTrainingScratch() override;
  size_t TrainingScratchBytes() const override;

  /// Pipeline Into-forms: bit-identical to the Matrix-returning passes,
  /// threading activations through the caller's scratch so a warmed
  /// (scratch, output) pair makes the whole pass allocation-free. The output
  /// must alias neither the input nor the scratch.
  ///
  /// ForwardInferenceInto additionally fuses every (Linear, LayerNorm,
  /// LeakyReLU) triple into GEMM + ONE per-row epilogue pass — the
  /// per-element op sequence (bias add, then normalize/scale/shift, then
  /// leak) is exactly the unfused layers', so results stay bit-identical;
  /// the intermediate activations just never round-trip through memory.
  void ForwardInto(const Matrix& x, PipelineScratch* scratch, Matrix* y);
  void ForwardInferenceInto(const Matrix& x, PipelineScratch* scratch,
                            Matrix* y) const;
  void BackwardInto(const Matrix& grad_out, PipelineScratch* scratch,
                    Matrix* grad_in);

  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace neo::nn
