#include "src/nn/adam.h"

#include <cmath>

namespace neo::nn {

Adam::Adam(std::vector<Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  // Optional global-norm gradient clipping. The reduction stays serial in
  // ascending (param, element) order: it is cheap next to the GEMMs and a
  // fixed summation order keeps the step bit-identical at any thread count.
  if (options_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (Param* p : params_) {
      for (size_t i = 0; i < p->grad.Size(); ++i) {
        norm_sq += static_cast<double>(p->grad.data()[i]) * p->grad.data()[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > options_.grad_clip) {
      const float scale = static_cast<float>(options_.grad_clip / norm);
      for (Param* p : params_) p->grad.Scale(scale);
    }
  }

  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    // Element-partitioned over the pool: each (m, v, w) slot is owned by
    // exactly one chunk, so the update is deterministic for any partition.
    ParallelRows(static_cast<int64_t>(p->value.Size()), /*min_parallel=*/1 << 13,
                 [&](int64_t i0, int64_t i1) {
                   for (int64_t i = i0; i < i1; ++i) {
                     const float grad = g[i] + options_.weight_decay * w[i];
                     m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
                     v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
                     const float m_hat = m[i] / bc1;
                     const float v_hat = v[i] / bc2;
                     w[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
                   }
                 });
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

}  // namespace neo::nn
