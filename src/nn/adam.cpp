#include "src/nn/adam.h"

#include <cmath>

#include "src/nn/matrix_simd.h"

namespace neo::nn {

Adam::Adam(std::vector<Param*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  // Optional global-norm gradient clipping. The reduction stays serial in
  // ascending (param, element) order: it is cheap next to the GEMMs and a
  // fixed summation order keeps the step bit-identical at any thread count.
  if (options_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (Param* p : params_) {
      for (size_t i = 0; i < p->grad.Size(); ++i) {
        norm_sq += static_cast<double>(p->grad.data()[i]) * p->grad.data()[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > options_.grad_clip) {
      const float scale = static_cast<float>(options_.grad_clip / norm);
      for (Param* p : params_) p->grad.Scale(scale);
    }
  }

  // Fused m/v/w sweep per parameter matrix, routed through the kernel
  // dispatch table (SIMD-vectorized div/sqrt under the AVX arms). The
  // per-element op sequence is identical in every arm and scalar tail, so
  // the update is bit-identical across dispatch arms, thread counts, and
  // element partitions (see AdamFusedUpdate in matrix.h).
  detail::AdamScalars scalars;
  scalars.lr = options_.lr;
  scalars.beta1 = options_.beta1;
  scalars.beta2 = options_.beta2;
  scalars.eps = options_.eps;
  scalars.weight_decay = options_.weight_decay;
  scalars.bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  scalars.bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    AdamFusedUpdate(p->value.data(), m_[k].data(), v_[k].data(), p->grad.data(),
                    static_cast<int64_t>(p->value.Size()), scalars);
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

void Adam::CaptureState(std::vector<Matrix>* m, std::vector<Matrix>* v,
                        int64_t* steps) const {
  m->assign(m_.begin(), m_.end());
  v->assign(v_.begin(), v_.end());
  *steps = t_;
}

void Adam::RestoreState(const std::vector<Matrix>& m, const std::vector<Matrix>& v,
                        int64_t steps) {
  NEO_CHECK(m.size() == m_.size() && v.size() == v_.size());
  for (size_t k = 0; k < m_.size(); ++k) {
    m_[k] = m[k];
    v_[k] = v[k];
  }
  t_ = steps;
}

}  // namespace neo::nn
