// Internal interface between the kernel dispatcher (matrix.cpp) and the
// per-ISA SIMD micro-kernel translation units (matrix_simd_avx2.cpp,
// matrix_simd_avx512.cpp). Nothing here is part of the public nn API —
// callers go through MatMul / MatMulPacked and the KernelIsa dispatch in
// matrix.h.
//
// Every SIMD arm shares one B layout: 16-float column panels (see
// PackBPanels below). A 16-float panel row is 64 bytes — two AVX2 ymm loads
// or exactly one AVX-512 zmm load — so the same packed buffer feeds both
// arms and PackedB never has to be rebuilt when the dispatch arm changes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace neo::nn::detail {

/// Width (floats) of one packed B column panel. Panel `j` carries columns
/// [16j, 16j+16) of B for every k row, k-major: float 16*p + jj of panel j is
/// B(p, 16j + jj). The last panel is zero-padded to the full width so the
/// micro-kernels always compute 16 lanes and mask only the store.
constexpr int kPanelWidth = 16;

inline int NumPanels(int m) { return (m + kPanelWidth - 1) / kPanelWidth; }
inline size_t PackedBSize(int k, int m) {
  return static_cast<size_t>(NumPanels(m)) * static_cast<size_t>(k) * kPanelWidth;
}

/// Blocking (floats) for the rank-1-update transpose-A kernels, shared by the
/// portable and SIMD arms so a retune cannot leave one arm behind: a
/// kTaBlockI x kTaBlockJ block of outputs stays well inside L2 while the
/// k-dim rows stream through L1.
constexpr int kTaBlockI = 64;
constexpr int kTaBlockJ = 128;

/// Packs b (k x m, row-major) into the panel layout above. Defined in
/// matrix.cpp (portable code; packing is pure data movement).
void PackBPanels(const float* b, int k, int m, float* packed);

/// Packs b^T where b is (m x k) row-major — i.e. the panel layout of the
/// (k x m) transpose — without materializing the transpose first.
void PackBTransposedPanels(const float* b, int k, int m, float* packed);

/// PackBPanels reading row p of b through brows[p] (nullptr = identity):
/// packs a row gather of b without materializing it.
void PackBPanelsGathered(const float* b, const int* brows, int k, int m,
                         float* packed);

/// Per-step Adam scalars shared by every dispatch arm's fused update kernel.
/// bc1/bc2 are the bias-correction denominators (1 - beta^t) for this step.
struct AdamScalars {
  float lr;
  float beta1;
  float beta2;
  float eps;
  float weight_decay;
  float bc1;
  float bc2;
};

/// One dispatch arm's micro-kernels. Every entry obeys the matrix.h
/// determinism contract: each output element's summation order is a fixed
/// function of the shape alone, so any partition of the output rows (thread
/// chunks, row subsets, tile boundaries) yields bit-identical values.
struct SimdGemmKernels {
  const char* name;

  /// Output rows [r0, r1) of a (n x k) times b (k x m), with b pre-packed
  /// into 16-float panels. Each output element is a single FMA chain over k
  /// in ascending order. `arows`, when non-null, maps GEMM row r to row
  /// arows[r] of `a` — the zero-copy gather the sparse training conv rides
  /// (output rows are never remapped). An indexed multiply is bit-identical
  /// to multiplying the materialized gather: the kernels read the same
  /// values in the same order.
  void (*gemm_rows)(const float* a, const int* arows, const float* packed_b,
                    float* o, int64_t r0, int64_t r1, int k, int m);

  /// Accumulating twin of gemm_rows: o += a * b, implemented by initializing
  /// each output element's FMA chain FROM the existing o value instead of
  /// zero, then chaining over k ascending exactly like gemm_rows. Because
  /// every k step is fma(a_p, b_p, acc) with a single rounding, a zero a
  /// entry is an exact no-op — which is what makes the sparse training conv's
  /// weight-gradient blocks bit-identical to the dense (zero-row-padded)
  /// fallback (see MatMulTransposeAInto in matrix.h).
  void (*gemm_acc_rows)(const float* a, const int* arows, const float* packed_b,
                        float* o, int64_t r0, int64_t r1, int k, int m);

  /// Rank-1-update accumulation for a^T (a: n x k) times b (n x m): adds
  /// row r of a (x) row r of b into output rows [i0, i1) for r ascending, the
  /// same traversal as the portable MatMulTransposeARows (including the
  /// zero-skip on a's entries). Summation order per output element is
  /// ascending input row r. `arows`/`brows` optionally remap input row r to
  /// a[arows[r]] / b[brows[r]] (zero-copy gathered weight gradients).
  void (*ta_update_rows)(const float* a, const int* arows, const float* b,
                         const int* brows, float* o, int64_t i0, int64_t i1,
                         int n, int k, int m);

  /// Fused Adam update over elements [i0, i1): m/v/w are read, updated, and
  /// written back in one sweep with no temporaries. The per-element
  /// arithmetic is the exact correctly-rounded op sequence of
  /// detail::AdamUpdateScalar in matrix.cpp (explicit fma / mul / div / sqrt,
  /// never compiler-contracted), so every arm — and the scalar tail inside a
  /// vector arm — produces bit-identical parameters for any element
  /// partition.
  void (*adam_update)(float* w, float* m, float* v, const float* g,
                      int64_t i0, int64_t i1, const AdamScalars& s);
};

/// The canonical per-element Adam step (defined in matrix.cpp, declared here
/// so the SIMD TUs' scalar tails share it). Every operation is an explicit
/// single-rounding fmaf / mul / div / sqrt, mirroring the vector kernels
/// lane-for-lane.
void AdamUpdateScalarRange(float* w, float* m, float* v, const float* g,
                           int64_t i0, int64_t i1, const AdamScalars& s);

/// Arm accessors: non-null iff the TU was compiled with the ISA available to
/// the compiler. Whether the *CPU* supports the ISA is the dispatcher's
/// problem (KernelIsaAvailable checks cpuid as well).
const SimdGemmKernels* Avx2Kernels();
const SimdGemmKernels* Avx512Kernels();

}  // namespace neo::nn::detail
