// AVX2+FMA GEMM micro-kernels (the "avx2" dispatch arm). This TU is always
// compiled with -mavx2 -mfma (see CMakeLists.txt) regardless of the global
// arch flags; the runtime dispatcher in matrix.cpp only routes here after
// cpuid confirms AVX2 and FMA, so nothing outside this TU needs the flags.
// When the toolchain itself cannot target AVX2 the TU degrades to a stub
// that reports the arm unavailable.
#include "src/nn/matrix_simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace neo::nn::detail {
namespace {

// 6x16 register tile: MR (<= 6) output rows by one 16-float B panel. Twelve
// ymm accumulators at full MR — each a single FMA chain over k in ascending
// order, so an output element's value never depends on which tile (or row
// subset, or thread chunk) computed it; the twelve independent chains are
// what keep the FMA pipeline full, not chain interleaving as in the portable
// kernel. The accumulators are named variables behind `if constexpr` row
// guards, NOT arrays: GCC keeps local arrays this large memory-backed (SRA
// size limit), which turns every FMA into an FMA-plus-spill-store and halves
// throughput.
template <int MR>
inline void GemmTileAvx2(const float* __restrict a, int64_t row, int k,
                         const float* __restrict panel, float* __restrict o,
                         int m, int jc) {
  static_assert(MR >= 1 && MR <= 6, "tile is at most 6 rows");
  // Row pointers are clamped to row 0 for the unused tail rows so the
  // address computation itself stays in bounds.
  const auto rptr = [&](int r) {
    return a + static_cast<size_t>(row + (r < MR ? r : 0)) * k;
  };
  const float* __restrict a0 = rptr(0);
  const float* __restrict a1 = rptr(1);
  const float* __restrict a2 = rptr(2);
  const float* __restrict a3 = rptr(3);
  const float* __restrict a4 = rptr(4);
  const float* __restrict a5 = rptr(5);
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = c00, c11 = c00, c20 = c00, c21 = c00;
  __m256 c30 = c00, c31 = c00, c40 = c00, c41 = c00;
  __m256 c50 = c00, c51 = c00;
  // One k step: each accumulator chains exactly one FMA, ascending p.
  const auto kstep = [&](int p) {
    const float* brow = panel + static_cast<size_t>(p) * kPanelWidth;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_broadcast_ss(a0 + p);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    if constexpr (MR > 1) {
      av = _mm256_broadcast_ss(a1 + p);
      c10 = _mm256_fmadd_ps(av, b0, c10);
      c11 = _mm256_fmadd_ps(av, b1, c11);
    }
    if constexpr (MR > 2) {
      av = _mm256_broadcast_ss(a2 + p);
      c20 = _mm256_fmadd_ps(av, b0, c20);
      c21 = _mm256_fmadd_ps(av, b1, c21);
    }
    if constexpr (MR > 3) {
      av = _mm256_broadcast_ss(a3 + p);
      c30 = _mm256_fmadd_ps(av, b0, c30);
      c31 = _mm256_fmadd_ps(av, b1, c31);
    }
    if constexpr (MR > 4) {
      av = _mm256_broadcast_ss(a4 + p);
      c40 = _mm256_fmadd_ps(av, b0, c40);
      c41 = _mm256_fmadd_ps(av, b1, c41);
    }
    if constexpr (MR > 5) {
      av = _mm256_broadcast_ss(a5 + p);
      c50 = _mm256_fmadd_ps(av, b0, c50);
      c51 = _mm256_fmadd_ps(av, b1, c51);
    }
  };
  // Unrolled by two to halve loop-control overhead: the 24 FMA/load uops per
  // step sit exactly at the FMA port bound, so any front-end overhead shows
  // up as lost throughput. Both unrolled steps extend the SAME accumulator
  // chains in ascending p, so the summation order (and every result bit) is
  // unchanged from the rolled loop.
  int p = 0;
  for (; p + 2 <= k; p += 2) {
    kstep(p);
    kstep(p + 1);
  }
  if (p < k) kstep(p);
  const int w = m - jc < kPanelWidth ? m - jc : kPanelWidth;
  const auto store_row = [&](int r, __m256 lo, __m256 hi) {
    float* orow = o + static_cast<size_t>(row + r) * m + jc;
    if (w == kPanelWidth) {
      _mm256_storeu_ps(orow, lo);
      _mm256_storeu_ps(orow + 8, hi);
    } else {
      // Tail panel: the padded lanes were computed against zeros; spill to a
      // stack buffer and copy only the valid columns out.
      alignas(32) float tmp[kPanelWidth];
      _mm256_store_ps(tmp, lo);
      _mm256_store_ps(tmp + 8, hi);
      for (int j = 0; j < w; ++j) orow[j] = tmp[j];
    }
  };
  store_row(0, c00, c01);
  if constexpr (MR > 1) store_row(1, c10, c11);
  if constexpr (MR > 2) store_row(2, c20, c21);
  if constexpr (MR > 3) store_row(3, c30, c31);
  if constexpr (MR > 4) store_row(4, c40, c41);
  if constexpr (MR > 5) store_row(5, c50, c51);
}

void GemmRowsAvx2(const float* a, const float* packed, float* o, int64_t r0,
                  int64_t r1, int k, int m) {
  const int panels = NumPanels(m);
  const size_t panel_stride = static_cast<size_t>(k) * kPanelWidth;
  int64_t i = r0;
  for (; i + 6 <= r1; i += 6) {
    for (int pj = 0; pj < panels; ++pj) {
      GemmTileAvx2<6>(a, i, k, packed + pj * panel_stride, o, m,
                      pj * kPanelWidth);
    }
  }
  const int tail = static_cast<int>(r1 - i);
  for (int pj = 0; pj < panels && tail > 0; ++pj) {
    const float* panel = packed + pj * panel_stride;
    const int jc = pj * kPanelWidth;
    switch (tail) {
      case 1: GemmTileAvx2<1>(a, i, k, panel, o, m, jc); break;
      case 2: GemmTileAvx2<2>(a, i, k, panel, o, m, jc); break;
      case 3: GemmTileAvx2<3>(a, i, k, panel, o, m, jc); break;
      case 4: GemmTileAvx2<4>(a, i, k, panel, o, m, jc); break;
      default: GemmTileAvx2<5>(a, i, k, panel, o, m, jc); break;
    }
  }
}

// Vectorized twin of the portable MatMulTransposeARows: same i/j blocking,
// same ascending-input-row accumulation per output element, same zero-skip —
// only the j (axpy) loop runs 8 lanes at a time. The vector/scalar split of
// the j range is a fixed function of (jc, m), so which lanes round through
// FMA vs mul+add never depends on the i partition. Blocking constants are
// the shared kTaBlockI/kTaBlockJ from matrix_simd.h.
void TaUpdateRowsAvx2(const float* __restrict a, const float* __restrict b,
                      float* __restrict o, int64_t i0, int64_t i1, int n, int k,
                      int m) {
  for (int jc = 0; jc < m; jc += kTaBlockJ) {
    const int jend = jc + kTaBlockJ < m ? jc + kTaBlockJ : m;
    const int jlen = jend - jc;
    const int jvec = jlen & ~7;
    for (int64_t icc = i0; icc < i1; icc += kTaBlockI) {
      const int64_t icend = icc + kTaBlockI < i1 ? icc + kTaBlockI : i1;
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow = a + static_cast<size_t>(r) * k;
        const float* __restrict brow = b + static_cast<size_t>(r) * m + jc;
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m256 avv = _mm256_set1_ps(av);
          int j = 0;
          for (; j < jvec; j += 8) {
            const __m256 acc = _mm256_loadu_ps(orow + j);
            _mm256_storeu_ps(orow + j,
                             _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + j), acc));
          }
          for (; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

constexpr SimdGemmKernels kAvx2Kernels = {"avx2", GemmRowsAvx2,
                                          TaUpdateRowsAvx2};

}  // namespace

const SimdGemmKernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace neo::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace neo::nn::detail {
const SimdGemmKernels* Avx2Kernels() { return nullptr; }
}  // namespace neo::nn::detail

#endif
