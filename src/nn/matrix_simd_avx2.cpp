// AVX2+FMA GEMM micro-kernels (the "avx2" dispatch arm). This TU is always
// compiled with -mavx2 -mfma (see CMakeLists.txt) regardless of the global
// arch flags; the runtime dispatcher in matrix.cpp only routes here after
// cpuid confirms AVX2 and FMA, so nothing outside this TU needs the flags.
// When the toolchain itself cannot target AVX2 the TU degrades to a stub
// that reports the arm unavailable.
#include "src/nn/matrix_simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace neo::nn::detail {
namespace {

// 6x16 register tile: MR (<= 6) output rows by one 16-float B panel. Twelve
// ymm accumulators at full MR — each a single FMA chain over k in ascending
// order, so an output element's value never depends on which tile (or row
// subset, or thread chunk) computed it; the twelve independent chains are
// what keep the FMA pipeline full, not chain interleaving as in the portable
// kernel. The accumulators are named variables behind `if constexpr` row
// guards, NOT arrays: GCC keeps local arrays this large memory-backed (SRA
// size limit), which turns every FMA into an FMA-plus-spill-store and halves
// throughput.
template <int MR, bool Acc = false>
inline void GemmTileAvx2(const float* __restrict a, const int* __restrict arows,
                         int64_t row, int k, const float* __restrict panel,
                         float* __restrict o, int m, int jc) {
  static_assert(MR >= 1 && MR <= 6, "tile is at most 6 rows");
  // Row pointers are clamped to row 0 for the unused tail rows so the
  // address computation itself stays in bounds. `arows` remaps A rows only
  // (zero-copy gather); output rows keep their positions.
  const auto rptr = [&](int r) {
    const int64_t gr = row + (r < MR ? r : 0);
    return a + static_cast<size_t>(arows != nullptr ? arows[gr] : gr) * k;
  };
  const float* __restrict a0 = rptr(0);
  const float* __restrict a1 = rptr(1);
  const float* __restrict a2 = rptr(2);
  const float* __restrict a3 = rptr(3);
  const float* __restrict a4 = rptr(4);
  const float* __restrict a5 = rptr(5);
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = c00, c11 = c00, c20 = c00, c21 = c00;
  __m256 c30 = c00, c31 = c00, c40 = c00, c41 = c00;
  __m256 c50 = c00, c51 = c00;
  const int tile_w = m - jc < kPanelWidth ? m - jc : kPanelWidth;
  if constexpr (Acc) {
    // Accumulate mode: seed each chain from the existing output so the whole
    // FMA chain continues from o's value (gemm_acc_rows contract). Tail-panel
    // lanes seed zero; their products hit zero-padded B and the masked copy
    // out never stores them.
    const auto load_row = [&](int r, __m256& lo, __m256& hi) {
      const float* orow = o + static_cast<size_t>(row + (r < MR ? r : 0)) * m + jc;
      if (tile_w == kPanelWidth) {
        lo = _mm256_loadu_ps(orow);
        hi = _mm256_loadu_ps(orow + 8);
      } else {
        alignas(32) float tmp[kPanelWidth] = {0};
        for (int j = 0; j < tile_w; ++j) tmp[j] = orow[j];
        lo = _mm256_load_ps(tmp);
        hi = _mm256_load_ps(tmp + 8);
      }
    };
    load_row(0, c00, c01);
    if constexpr (MR > 1) load_row(1, c10, c11);
    if constexpr (MR > 2) load_row(2, c20, c21);
    if constexpr (MR > 3) load_row(3, c30, c31);
    if constexpr (MR > 4) load_row(4, c40, c41);
    if constexpr (MR > 5) load_row(5, c50, c51);
  }
  // One k step: each accumulator chains exactly one FMA, ascending p.
  const auto kstep = [&](int p) {
    const float* brow = panel + static_cast<size_t>(p) * kPanelWidth;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_broadcast_ss(a0 + p);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    if constexpr (MR > 1) {
      av = _mm256_broadcast_ss(a1 + p);
      c10 = _mm256_fmadd_ps(av, b0, c10);
      c11 = _mm256_fmadd_ps(av, b1, c11);
    }
    if constexpr (MR > 2) {
      av = _mm256_broadcast_ss(a2 + p);
      c20 = _mm256_fmadd_ps(av, b0, c20);
      c21 = _mm256_fmadd_ps(av, b1, c21);
    }
    if constexpr (MR > 3) {
      av = _mm256_broadcast_ss(a3 + p);
      c30 = _mm256_fmadd_ps(av, b0, c30);
      c31 = _mm256_fmadd_ps(av, b1, c31);
    }
    if constexpr (MR > 4) {
      av = _mm256_broadcast_ss(a4 + p);
      c40 = _mm256_fmadd_ps(av, b0, c40);
      c41 = _mm256_fmadd_ps(av, b1, c41);
    }
    if constexpr (MR > 5) {
      av = _mm256_broadcast_ss(a5 + p);
      c50 = _mm256_fmadd_ps(av, b0, c50);
      c51 = _mm256_fmadd_ps(av, b1, c51);
    }
  };
  // Unrolled by two to halve loop-control overhead: the 24 FMA/load uops per
  // step sit exactly at the FMA port bound, so any front-end overhead shows
  // up as lost throughput. Both unrolled steps extend the SAME accumulator
  // chains in ascending p, so the summation order (and every result bit) is
  // unchanged from the rolled loop.
  int p = 0;
  for (; p + 2 <= k; p += 2) {
    kstep(p);
    kstep(p + 1);
  }
  if (p < k) kstep(p);
  const auto store_row = [&](int r, __m256 lo, __m256 hi) {
    float* orow = o + static_cast<size_t>(row + r) * m + jc;
    if (tile_w == kPanelWidth) {
      _mm256_storeu_ps(orow, lo);
      _mm256_storeu_ps(orow + 8, hi);
    } else {
      // Tail panel: the padded lanes were computed against zeros; spill to a
      // stack buffer and copy only the valid columns out.
      alignas(32) float tmp[kPanelWidth];
      _mm256_store_ps(tmp, lo);
      _mm256_store_ps(tmp + 8, hi);
      for (int j = 0; j < tile_w; ++j) orow[j] = tmp[j];
    }
  };
  store_row(0, c00, c01);
  if constexpr (MR > 1) store_row(1, c10, c11);
  if constexpr (MR > 2) store_row(2, c20, c21);
  if constexpr (MR > 3) store_row(3, c30, c31);
  if constexpr (MR > 4) store_row(4, c40, c41);
  if constexpr (MR > 5) store_row(5, c50, c51);
}

template <bool Acc>
void GemmRowsAvx2Impl(const float* a, const int* arows, const float* packed,
                      float* o, int64_t r0, int64_t r1, int k, int m) {
  const int panels = NumPanels(m);
  const size_t panel_stride = static_cast<size_t>(k) * kPanelWidth;
  int64_t i = r0;
  for (; i + 6 <= r1; i += 6) {
    for (int pj = 0; pj < panels; ++pj) {
      GemmTileAvx2<6, Acc>(a, arows, i, k, packed + pj * panel_stride, o, m,
                           pj * kPanelWidth);
    }
  }
  const int tail = static_cast<int>(r1 - i);
  for (int pj = 0; pj < panels && tail > 0; ++pj) {
    const float* panel = packed + pj * panel_stride;
    const int jc = pj * kPanelWidth;
    switch (tail) {
      case 1: GemmTileAvx2<1, Acc>(a, arows, i, k, panel, o, m, jc); break;
      case 2: GemmTileAvx2<2, Acc>(a, arows, i, k, panel, o, m, jc); break;
      case 3: GemmTileAvx2<3, Acc>(a, arows, i, k, panel, o, m, jc); break;
      case 4: GemmTileAvx2<4, Acc>(a, arows, i, k, panel, o, m, jc); break;
      default: GemmTileAvx2<5, Acc>(a, arows, i, k, panel, o, m, jc); break;
    }
  }
}

void GemmRowsAvx2(const float* a, const int* arows, const float* packed,
                  float* o, int64_t r0, int64_t r1, int k, int m) {
  GemmRowsAvx2Impl<false>(a, arows, packed, o, r0, r1, k, m);
}

void GemmAccRowsAvx2(const float* a, const int* arows, const float* packed,
                     float* o, int64_t r0, int64_t r1, int k, int m) {
  GemmRowsAvx2Impl<true>(a, arows, packed, o, r0, r1, k, m);
}

/// Fused Adam sweep, 8 lanes at a time. Each lane runs exactly the op
/// sequence of detail::AdamUpdateScalarRange (fma / mul / div / sqrt / sub,
/// all correctly rounded), and the sub-8 tail calls that scalar routine, so
/// any element partition and any arm yield bit-identical parameters.
void AdamUpdateAvx2(float* w, float* m, float* v, const float* g, int64_t i0,
                    int64_t i1, const AdamScalars& s) {
  const __m256 lr = _mm256_set1_ps(s.lr);
  const __m256 b1 = _mm256_set1_ps(s.beta1);
  const __m256 b2 = _mm256_set1_ps(s.beta2);
  const __m256 one_minus_b1 = _mm256_set1_ps(1.0f - s.beta1);
  const __m256 one_minus_b2 = _mm256_set1_ps(1.0f - s.beta2);
  const __m256 eps = _mm256_set1_ps(s.eps);
  const __m256 wd = _mm256_set1_ps(s.weight_decay);
  const __m256 bc1 = _mm256_set1_ps(s.bc1);  // Divisors, not reciprocals:
  const __m256 bc2 = _mm256_set1_ps(s.bc2);  // division matches the scalar path.
  int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    const __m256 wv = _mm256_loadu_ps(w + i);
    const __m256 gv = _mm256_fmadd_ps(wd, wv, _mm256_loadu_ps(g + i));
    const __m256 mv =
        _mm256_fmadd_ps(b1, _mm256_loadu_ps(m + i), _mm256_mul_ps(one_minus_b1, gv));
    const __m256 vv = _mm256_fmadd_ps(
        b2, _mm256_loadu_ps(v + i), _mm256_mul_ps(one_minus_b2, _mm256_mul_ps(gv, gv)));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 m_hat = _mm256_div_ps(mv, bc1);
    const __m256 v_hat = _mm256_div_ps(vv, bc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
    _mm256_storeu_ps(
        w + i, _mm256_sub_ps(wv, _mm256_div_ps(_mm256_mul_ps(lr, m_hat), denom)));
  }
  if (i < i1) AdamUpdateScalarRange(w, m, v, g, i, i1, s);
}

// Vectorized twin of the portable MatMulTransposeARows: same i/j blocking,
// same ascending-input-row accumulation per output element, same zero-skip —
// only the j (axpy) loop runs 8 lanes at a time. The vector/scalar split of
// the j range is a fixed function of (jc, m), so which lanes round through
// FMA vs mul+add never depends on the i partition. Blocking constants are
// the shared kTaBlockI/kTaBlockJ from matrix_simd.h.
void TaUpdateRowsAvx2(const float* __restrict a, const int* __restrict arows,
                      const float* __restrict b, const int* __restrict brows,
                      float* __restrict o, int64_t i0, int64_t i1, int n, int k,
                      int m) {
  // Four input rows per sweep with the FMAs CHAINED in ascending r — the
  // exact summation order of the one-row loop (zero av is an exact fma
  // no-op), at a quarter of the output load/store traffic. See the AVX-512
  // twin for the full notes.
  for (int jc = 0; jc < m; jc += kTaBlockJ) {
    const int jend = jc + kTaBlockJ < m ? jc + kTaBlockJ : m;
    const int jlen = jend - jc;
    const int jvec = jlen & ~7;
    for (int64_t icc = i0; icc < i1; icc += kTaBlockI) {
      const int64_t icend = icc + kTaBlockI < i1 ? icc + kTaBlockI : i1;
      const auto aptr = [&](int r) {
        return a + static_cast<size_t>(arows != nullptr ? arows[r] : r) * k;
      };
      const auto bptr = [&](int r) {
        return b + static_cast<size_t>(brows != nullptr ? brows[r] : r) * m + jc;
      };
      int r = 0;
      for (; r + 4 <= n; r += 4) {
        const float* __restrict a0 = aptr(r);
        const float* __restrict a1 = aptr(r + 1);
        const float* __restrict a2 = aptr(r + 2);
        const float* __restrict a3 = aptr(r + 3);
        const float* __restrict b0 = bptr(r);
        const float* __restrict b1 = bptr(r + 1);
        const float* __restrict b2 = bptr(r + 2);
        const float* __restrict b3 = bptr(r + 3);
        for (int64_t i = icc; i < icend; ++i) {
          const float av0 = a0[i], av1 = a1[i], av2 = a2[i], av3 = a3[i];
          if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m256 avv0 = _mm256_set1_ps(av0);
          const __m256 avv1 = _mm256_set1_ps(av1);
          const __m256 avv2 = _mm256_set1_ps(av2);
          const __m256 avv3 = _mm256_set1_ps(av3);
          int j = 0;
          for (; j < jvec; j += 8) {
            __m256 acc = _mm256_loadu_ps(orow + j);
            acc = _mm256_fmadd_ps(avv0, _mm256_loadu_ps(b0 + j), acc);
            acc = _mm256_fmadd_ps(avv1, _mm256_loadu_ps(b1 + j), acc);
            acc = _mm256_fmadd_ps(avv2, _mm256_loadu_ps(b2 + j), acc);
            acc = _mm256_fmadd_ps(avv3, _mm256_loadu_ps(b3 + j), acc);
            _mm256_storeu_ps(orow + j, acc);
          }
          for (; j < jlen; ++j) {
            float acc = orow[j];
            acc = __builtin_fmaf(av0, b0[j], acc);
            acc = __builtin_fmaf(av1, b1[j], acc);
            acc = __builtin_fmaf(av2, b2[j], acc);
            acc = __builtin_fmaf(av3, b3[j], acc);
            orow[j] = acc;
          }
        }
      }
      for (; r < n; ++r) {
        const float* __restrict arow = aptr(r);
        const float* __restrict brow = bptr(r);
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m256 avv = _mm256_set1_ps(av);
          int j = 0;
          for (; j < jvec; j += 8) {
            const __m256 acc = _mm256_loadu_ps(orow + j);
            _mm256_storeu_ps(orow + j,
                             _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + j), acc));
          }
          for (; j < jlen; ++j) orow[j] = __builtin_fmaf(av, brow[j], orow[j]);
        }
      }
    }
  }
}

constexpr SimdGemmKernels kAvx2Kernels = {"avx2", GemmRowsAvx2, GemmAccRowsAvx2,
                                          TaUpdateRowsAvx2, AdamUpdateAvx2};

}  // namespace

const SimdGemmKernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace neo::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace neo::nn::detail {
const SimdGemmKernels* Avx2Kernels() { return nullptr; }
}  // namespace neo::nn::detail

#endif
