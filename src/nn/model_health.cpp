#include "src/nn/model_health.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace neo::nn {

bool ModelHealthMonitor::LossDiverged(double loss) const {
  if (options_.loss_divergence_factor <= 0.0) return false;
  if (static_cast<int>(recent_losses_.size()) < options_.loss_window) return false;
  // Median of the healthy window: robust to the occasional high-loss batch
  // that a mean would let drag the band upward.
  std::vector<double> sorted(recent_losses_.begin(), recent_losses_.end());
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  return loss > options_.loss_divergence_factor * median;
}

ModelHealthMonitor::Verdict ModelHealthMonitor::Observe(ValueNetwork* net,
                                                        double loss) {
  if (!options_.enabled) return Verdict::kHealthy;

  Verdict verdict = Verdict::kHealthy;
  if (!std::isfinite(loss)) {
    verdict = Verdict::kNonFiniteLoss;
  } else if (LossDiverged(loss)) {
    verdict = Verdict::kLossDiverged;
  } else if (net->HasNonFiniteParams()) {
    // Weight scan last: it is the most expensive screen.
    verdict = Verdict::kNonFiniteWeights;
  }

  if (verdict == Verdict::kHealthy) {
    ring_.emplace_back();
    net->CaptureSnapshot(&ring_.back());
    ++snapshots_taken_;
    while (static_cast<int>(ring_.size()) > std::max(1, options_.snapshot_ring)) {
      ring_.pop_front();
    }
    recent_losses_.push_back(loss);
    while (static_cast<int>(recent_losses_.size()) > std::max(1, options_.loss_window)) {
      recent_losses_.pop_front();
    }
    return verdict;
  }

  if (!ring_.empty()) {
    net->RestoreSnapshot(ring_.back());
    ++rollbacks_;
  }
  // No snapshot yet (first retrain diverged): nothing to roll back to; the
  // verdict still reaches the caller, whose circuit breaker / watchdog are
  // the remaining lines of defense.
  return verdict;
}

const char* ModelHealthMonitor::VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kHealthy: return "healthy";
    case Verdict::kNonFiniteLoss: return "non_finite_loss";
    case Verdict::kNonFiniteWeights: return "non_finite_weights";
    case Verdict::kLossDiverged: return "loss_diverged";
  }
  return "unknown";
}

}  // namespace neo::nn
