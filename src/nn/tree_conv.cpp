#include "src/nn/tree_conv.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>



namespace neo::nn {

namespace {

bool DefaultSparseTraining() {
  const char* e = std::getenv("NEO_DENSE_TRAINING");
  return !(e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0);
}

bool& SparseTrainingFlag() {
  static bool sparse = DefaultSparseTraining();
  return sparse;
}

/// Gathers the present `child` rows (of every node, or of the `rows` subset
/// when given) into `gather`, recording each gathered row's parent node in
/// `parent` (ascending). Returns the gather count. Capacity-reused: with a
/// warmed scratch this performs no heap allocation.
int GatherSide(const std::vector<int>& child, const Matrix& x, int top,
               const std::vector<int>* rows, Matrix* gather,
               std::vector<int>* parent) {
  parent->clear();
  int present = 0;
  if (rows == nullptr) {
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] >= 0) ++present;
    }
  } else {
    for (const int r : *rows) {
      if (child[static_cast<size_t>(r)] >= 0) ++present;
    }
  }
  gather->Reshape(present, top);
  if (present == 0) return 0;
  int t = 0;
  auto take = [&](int node) {
    const int c = child[static_cast<size_t>(node)];
    if (c < 0) return;
    std::copy(x.Row(c), x.Row(c) + top, gather->Row(t));
    parent->push_back(node);
    ++t;
  };
  if (rows == nullptr) {
    for (size_t i = 0; i < child.size(); ++i) take(static_cast<int>(i));
  } else {
    for (const int r : *rows) take(r);
  }
  return present;
}

}  // namespace

void SetSparseTrainingConv(bool sparse) { SparseTrainingFlag() = sparse; }
bool SparseTrainingConv() { return SparseTrainingFlag(); }

TreeGather TreeGather::Build(const TreeStructure& tree) {
  TreeGather g;
  BuildInto(tree, &g);
  return g;
}

void TreeGather::BuildInto(const TreeStructure& tree, TreeGather* out) {
  out->left.parent.clear();
  out->left.child.clear();
  out->right.parent.clear();
  out->right.child.clear();
  const size_t n = tree.NumNodes();
  for (size_t i = 0; i < n; ++i) {
    if (tree.left[i] >= 0) {
      out->left.parent.push_back(static_cast<int>(i));
      out->left.child.push_back(tree.left[i]);
    }
    if (tree.right[i] >= 0) {
      out->right.parent.push_back(static_cast<int>(i));
      out->right.child.push_back(tree.right[i]);
    }
  }
}

TreeConv::TreeConv(int in_channels, int out_channels, util::Rng& rng,
                   int shared_suffix_dim)
    : in_channels_(in_channels), shared_suffix_dim_(shared_suffix_dim) {
  NEO_CHECK(shared_suffix_dim >= 0 && shared_suffix_dim < in_channels);
  weight_.value = Matrix(3 * in_channels, out_channels);
  weight_.value.InitKaiming(rng, 3 * in_channels);
  weight_.grad = Matrix(3 * in_channels, out_channels);
  bias_.value = Matrix(1, out_channels);
  bias_.grad = Matrix(1, out_channels);
}

Matrix TreeConv::Forward(const TreeStructure& tree, const Matrix& x,
                         const TreeGather* gather, TrainScratch* scratch) {
  const int n = x.rows();
  const int cin = in_channels_;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == cin);
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());

  if (UseReferenceKernels()) {
    // Seed-path reconstruction (benches): dense (node, left, right) concat
    // through one big GEMM, cached for the matching reference Backward.
    last_concat_ = Matrix(n, 3 * cin);
    ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* dst = last_concat_.Row(static_cast<int>(i));
        const float* self = x.Row(static_cast<int>(i));
        for (int c = 0; c < cin; ++c) dst[c] = self[c];
        const int l = tree.left[static_cast<size_t>(i)];
        if (l >= 0) {
          const float* lv = x.Row(l);
          for (int c = 0; c < cin; ++c) dst[cin + c] = lv[c];
        }
        const int r = tree.right[static_cast<size_t>(i)];
        if (r >= 0) {
          const float* rv = x.Row(r);
          for (int c = 0; c < cin; ++c) dst[2 * cin + c] = rv[c];
        }
      }
    });
    Matrix y = MatMul(last_concat_, weight_.value);
    const float* b = bias_.value.Row(0);
    ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* row = y.Row(static_cast<int>(i));
        for (int c = 0; c < y.cols(); ++c) row[c] += b[c];
      }
    });
    return y;
  }

  TreeGather local;
  if (gather == nullptr) {
    local = TreeGather::Build(tree);
    gather = &local;
  }
  TrainScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const bool sparse = SparseTrainingConv();

  // Self block + bias. The bias is added here — before the child scatters —
  // in both modes, so the per-element op sequence is mode-independent.
  Matrix y = MatMulBlock(x, weight_.value.Row(0), cin, cout);
  const float* b = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = y.Row(static_cast<int>(i));
      for (int c = 0; c < cout; ++c) row[c] += b[c];
    }
  });
  train_stats_.forward_madds +=
      static_cast<uint64_t>(n) * static_cast<uint64_t>(cin) * cout;

  // Child blocks: gather, one block GEMM, scatter-add. Each parent appears
  // once per side, so the scatter partitions race-free over gather rows.
  // Sparse mode never materializes the gather: the GEMM reads the present
  // children's rows through the index list (bit-identical to gathering
  // first). The dense fallback builds the zero-padded gather explicitly —
  // that padding IS its cost model.
  auto add_side = [&](const SideGather& side, int blk) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) return;
    Matrix& contrib = scratch->lcontrib;
    if (sparse) {
      MatMulGatherBlockInto(x, side.child.data(), present,
                            weight_.value.Row(blk * cin), cin, cout, &contrib,
                            &scratch->gemm);
    } else {
      Matrix& g = scratch->gather;
      g.Reshape(n, cin);
      // Row i is node i's child features or stays zero (the reshape may
      // retain junk, so zero explicitly before the copies).
      g.Zero();
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + cin,
                    g.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulBlockInto(g, weight_.value.Row(blk * cin), cin, cout, &contrib,
                      &scratch->gemm);
    }
    ParallelRows(rows, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float* dst = y.Row(sparse ? side.parent[static_cast<size_t>(r)]
                                  : static_cast<int>(r));
        const float* src = contrib.Row(static_cast<int>(r));
        for (int c = 0; c < cout; ++c) dst[c] += src[c];
      }
    });
    train_stats_.forward_madds +=
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cin) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (cin + cout) * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  add_side(gather->left, 1);
  add_side(gather->right, 2);
  return y;
}

void TreeConv::ForwardTrain(const TreeStructure& tree, const Matrix& x,
                            const Matrix* suffixes, const int* node_seg,
                            const TreeGather& gather, TrainScratch* scratch,
                            float leaky_alpha, Matrix* y) {
  NEO_CHECK_MSG(!UseReferenceKernels(),
                "ForwardTrain is the fast path; reference mode keeps the seed "
                "concat Forward");
  const int n = x.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cin = in_channels_;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes != nullptr));
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());
  NEO_CHECK(scratch != nullptr);
  const bool sparse = SparseTrainingConv();

  // Suffix projections: one (B x cout) GEMM per block per FOREST — the
  // row-constant query-embedding suffix never spatially replicates into the
  // node features. LIVE weights (direct parameter pokes stay visible).
  if (s > 0) {
    NEO_CHECK(suffixes->cols() == s);
    MatMulBlockInto(*suffixes, weight_.value.Row(0 * cin + top), s, cout,
                    &scratch->proj_self, &scratch->gemm);
    MatMulBlockInto(*suffixes, weight_.value.Row(1 * cin + top), s, cout,
                    &scratch->proj_left, &scratch->gemm);
    MatMulBlockInto(*suffixes, weight_.value.Row(2 * cin + top), s, cout,
                    &scratch->proj_right, &scratch->gemm);
    train_stats_.forward_madds += 3ULL * suffixes->rows() * s * cout;
  }

  // Self top-block GEMM straight into y; the fused epilogue finishes rows.
  MatMulBlockInto(x, weight_.value.Row(0), top, cout, y, &scratch->gemm);
  train_stats_.forward_madds +=
      static_cast<uint64_t>(n) * static_cast<uint64_t>(top) * cout;

  // Side top-block GEMMs; both sides' contributions live at once so the
  // epilogue can apply them in one pass.
  auto side_contrib = [&](const SideGather& side, int blk, Matrix* contrib) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) {
      contrib->Reshape(0, cout);
      return;
    }
    if (sparse) {
      MatMulGatherBlockInto(x, side.child.data(), present,
                            weight_.value.Row(blk * cin), top, cout, contrib,
                            &scratch->gemm);
    } else {
      Matrix& g = scratch->gather;
      g.Reshape(n, top);
      g.Zero();
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + top,
                    g.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulBlockInto(g, weight_.value.Row(blk * cin), top, cout, contrib,
                      &scratch->gemm);
    }
    train_stats_.forward_madds +=
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(top) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (top + cout) * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  side_contrib(gather.left, 1, &scratch->lcontrib);
  side_contrib(gather.right, 2, &scratch->rcontrib);

  // Fused epilogue: bias + suffix projections + side contributions +
  // activation in ONE pass — each post-activation row is written exactly
  // once. Per-element op order is a fixed function of the node's child
  // presence alone (never of the gather-row count), which is what keeps
  // sparse and dense training bit-identical. Sparse contributions are
  // indexed by an ascending cursor into the parent list (re-seeded per
  // chunk), dense ones by the node index itself — same values either way.
  const float* b = bias_.value.Row(0);
  const int* lpar = gather.left.parent.data();
  const int* rpar = gather.right.parent.data();
  const size_t lsz = gather.left.parent.size();
  const size_t rsz = gather.right.parent.size();
  const bool has_lc = scratch->lcontrib.rows() > 0;
  const bool has_rc = scratch->rcontrib.rows() > 0;
  ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
    size_t lc = std::lower_bound(lpar, lpar + lsz, static_cast<int>(r0)) - lpar;
    size_t rc = std::lower_bound(rpar, rpar + rsz, static_cast<int>(r0)) - rpar;
    for (int64_t i = r0; i < r1; ++i) {
      const bool has_l = has_lc && lc < lsz && lpar[lc] == static_cast<int>(i);
      const bool has_r = has_rc && rc < rsz && rpar[rc] == static_cast<int>(i);
      const float* lrow =
          has_l ? scratch->lcontrib.Row(sparse ? static_cast<int>(lc)
                                               : static_cast<int>(i))
                : nullptr;
      const float* rrow =
          has_r ? scratch->rcontrib.Row(sparse ? static_cast<int>(rc)
                                               : static_cast<int>(i))
                : nullptr;
      if (has_l) ++lc;
      if (has_r) ++rc;
      const int seg = node_seg != nullptr ? node_seg[i] : 0;
      const float* ps = s > 0 ? scratch->proj_self.Row(seg) : nullptr;
      const float* pl = s > 0 ? scratch->proj_left.Row(seg) : nullptr;
      const float* pr = s > 0 ? scratch->proj_right.Row(seg) : nullptr;
      float* row = y->Row(static_cast<int>(i));
      for (int c = 0; c < cout; ++c) {
        float v = row[c] + b[c];
        if (ps != nullptr) v += ps[c];
        if (lrow != nullptr) {
          v += lrow[c];
          if (pl != nullptr) v += pl[c];
        }
        if (rrow != nullptr) {
          v += rrow[c];
          if (pr != nullptr) v += pr[c];
        }
        if (leaky_alpha >= 0.0f && v < 0.0f) v *= leaky_alpha;
        row[c] = v;
      }
    }
  });
}

void TreeConv::RefreshInferenceWeights() {
  const int cin = in_channels_;
  const int s = shared_suffix_dim_;
  const int top = cin - s;
  const int cout = weight_.value.cols();
  // Block b of the stacked weight occupies rows [b*cin, (b+1)*cin): the first
  // `top` rows multiply the varying channels, the last `s` the shared suffix.
  // Each block is a contiguous row range, so it packs straight from weight_
  // (copy + panel build — the pre-pack is what lets every ForwardInference
  // GEMM skip the per-call B pack under the SIMD dispatch arms).
  PackedB* tops[3] = {&w_self_, &w_left_, &w_right_};
  PackedB* suffixes[3] = {&w_self_suffix_, &w_left_suffix_, &w_right_suffix_};
  for (int blk = 0; blk < 3; ++blk) {
    const float* src = weight_.value.Row(blk * cin);
    tops[blk]->Assign(src, top, cout);
    if (s > 0) {
      suffixes[blk]->Assign(src + static_cast<size_t>(top) * cout, s, cout);
    }
  }
  split_fresh_ = true;
}

Matrix TreeConv::ForwardInference(const TreeStructure& tree, const Matrix& x,
                                  const Matrix* shared_suffix,
                                  Scratch* scratch) const {
  Matrix y;
  ForwardInferenceInto(tree, x, shared_suffix, scratch, /*leaky_alpha=*/-1.0f,
                       &y);
  return y;
}

void TreeConv::ForwardInferenceInto(const TreeStructure& tree, const Matrix& x,
                                    const Matrix* shared_suffix,
                                    Scratch* scratch, float leaky_alpha,
                                    Matrix* y) const {
  const int n = x.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (shared_suffix != nullptr));
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());
  NEO_CHECK(split_fresh_);
  Scratch local;
  if (scratch == nullptr) scratch = &local;

  // Per-call suffix projections: the shared channels contribute the same
  // (1 x out) vector to every node (per present block), computed once.
  if (s > 0) {
    NEO_CHECK(shared_suffix->cols() == s);
    MatMulPackedInto(*shared_suffix, w_self_suffix_, &scratch->suffix_self);
    MatMulPackedInto(*shared_suffix, w_left_suffix_, &scratch->suffix_left);
    MatMulPackedInto(*shared_suffix, w_right_suffix_, &scratch->suffix_right);
  }

  // Self GEMM straight into y; the fused epilogue below finishes each row:
  // bias, self suffix, left contrib, left suffix, right contrib, right
  // suffix, activation — the exact per-element op order of the unfused
  // passes, so results are bit-identical to running them separately, with
  // each post-activation row written exactly once.
  MatMulPackedInto(x, w_self_, y);
  const int cout = y->cols();

  const int nl = GatherSide(tree.left, x, top, nullptr, &scratch->gather,
                            &scratch->lparent);
  if (nl > 0) MatMulPackedInto(scratch->gather, w_left_, &scratch->lcontrib);
  const int nr = GatherSide(tree.right, x, top, nullptr, &scratch->gather,
                            &scratch->rparent);
  if (nr > 0) MatMulPackedInto(scratch->gather, w_right_, &scratch->rcontrib);

  const float* b = bias_.value.Row(0);
  const float* sps = s > 0 ? scratch->suffix_self.Row(0) : nullptr;
  const float* spl = s > 0 ? scratch->suffix_left.Row(0) : nullptr;
  const float* spr = s > 0 ? scratch->suffix_right.Row(0) : nullptr;
  size_t lc = 0, rc = 0;
  for (int i = 0; i < n; ++i) {
    const bool has_l = lc < scratch->lparent.size() && scratch->lparent[lc] == i;
    const bool has_r = rc < scratch->rparent.size() && scratch->rparent[rc] == i;
    const float* lrow =
        has_l ? scratch->lcontrib.Row(static_cast<int>(lc)) : nullptr;
    const float* rrow =
        has_r ? scratch->rcontrib.Row(static_cast<int>(rc)) : nullptr;
    if (has_l) ++lc;
    if (has_r) ++rc;
    float* row = y->Row(i);
    for (int c = 0; c < cout; ++c) {
      float v = row[c] + b[c];
      if (sps != nullptr) v += sps[c];
      if (lrow != nullptr) {
        v += lrow[c];
        if (spl != nullptr) v += spl[c];
      }
      if (rrow != nullptr) {
        v += rrow[c];
        if (spr != nullptr) v += spr[c];
      }
      if (leaky_alpha >= 0.0f && v < 0.0f) v *= leaky_alpha;
      row[c] = v;
    }
  }
}

void TreeConv::ForwardInferenceRows(const TreeStructure& tree, const Matrix& x,
                                    const std::vector<int>& rows,
                                    const Matrix* shared_suffix, Scratch* scratch,
                                    Matrix* y, float leaky_alpha) const {
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (shared_suffix != nullptr));
  NEO_CHECK(static_cast<size_t>(x.rows()) == tree.NumNodes());
  NEO_CHECK(y->rows() == x.rows() && y->cols() == cout);
  NEO_CHECK(split_fresh_);
  if (rows.empty()) return;
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  const int d = static_cast<int>(rows.size());

  if (s > 0) {
    NEO_CHECK(shared_suffix->cols() == s);
    MatMulPackedInto(*shared_suffix, w_self_suffix_, &scratch->suffix_self);
    MatMulPackedInto(*shared_suffix, w_left_suffix_, &scratch->suffix_left);
    MatMulPackedInto(*shared_suffix, w_right_suffix_, &scratch->suffix_right);
  }

  // Self block gathered over dirty rows; side blocks over the dirty rows'
  // present children; then one fused epilogue writes each dirty row once.
  scratch->gather.Reshape(d, top);
  for (int r = 0; r < d; ++r) {
    std::copy(x.Row(rows[static_cast<size_t>(r)]),
              x.Row(rows[static_cast<size_t>(r)]) + top, scratch->gather.Row(r));
  }
  MatMulPackedInto(scratch->gather, w_self_, &scratch->self);

  const int nl = GatherSide(tree.left, x, top, &rows, &scratch->gather,
                            &scratch->lparent);
  if (nl > 0) MatMulPackedInto(scratch->gather, w_left_, &scratch->lcontrib);
  const int nr = GatherSide(tree.right, x, top, &rows, &scratch->gather,
                            &scratch->rparent);
  if (nr > 0) MatMulPackedInto(scratch->gather, w_right_, &scratch->rcontrib);

  const float* b = bias_.value.Row(0);
  const float* sps = s > 0 ? scratch->suffix_self.Row(0) : nullptr;
  const float* spl = s > 0 ? scratch->suffix_left.Row(0) : nullptr;
  const float* spr = s > 0 ? scratch->suffix_right.Row(0) : nullptr;
  size_t lc = 0, rc = 0;
  for (int r = 0; r < d; ++r) {
    const int node = rows[static_cast<size_t>(r)];
    const bool has_l =
        lc < scratch->lparent.size() && scratch->lparent[lc] == node;
    const bool has_r =
        rc < scratch->rparent.size() && scratch->rparent[rc] == node;
    const float* lrow =
        has_l ? scratch->lcontrib.Row(static_cast<int>(lc)) : nullptr;
    const float* rrow =
        has_r ? scratch->rcontrib.Row(static_cast<int>(rc)) : nullptr;
    if (has_l) ++lc;
    if (has_r) ++rc;
    float* dst = y->Row(node);
    const float* src = scratch->self.Row(r);
    for (int c = 0; c < cout; ++c) {
      float v = src[c] + b[c];
      if (sps != nullptr) v += sps[c];
      if (lrow != nullptr) {
        v += lrow[c];
        if (spl != nullptr) v += spl[c];
      }
      if (rrow != nullptr) {
        v += rrow[c];
        if (spr != nullptr) v += spr[c];
      }
      if (leaky_alpha >= 0.0f && v < 0.0f) v *= leaky_alpha;
      dst[c] = v;
    }
  }
}

Matrix TreeConv::ForwardInferenceMulti(const TreeStructure& tree,
                                       const Matrix& x, const Matrix& suffixes,
                                       const std::vector<int>& node_seg,
                                       Scratch* scratch) const {
  Matrix y;
  ForwardInferenceMultiInto(tree, x, suffixes, node_seg, scratch,
                            /*leaky_alpha=*/-1.0f, &y);
  return y;
}

void TreeConv::ForwardInferenceMultiInto(const TreeStructure& tree,
                                         const Matrix& x,
                                         const Matrix& suffixes,
                                         const std::vector<int>& node_seg,
                                         Scratch* scratch, float leaky_alpha,
                                         Matrix* y) const {
  const int n = x.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes.rows() > 0));
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());
  NEO_CHECK(node_seg.size() == static_cast<size_t>(n));
  NEO_CHECK(split_fresh_);
  Scratch local;
  if (scratch == nullptr) scratch = &local;

  // All K queries' suffix projections in one GEMM per block; row k is
  // bitwise the single-query projection of query k.
  if (s > 0) {
    NEO_CHECK(suffixes.cols() == s);
    MatMulPackedInto(suffixes, w_self_suffix_, &scratch->suffix_self);
    MatMulPackedInto(suffixes, w_left_suffix_, &scratch->suffix_left);
    MatMulPackedInto(suffixes, w_right_suffix_, &scratch->suffix_right);
  }

  MatMulPackedInto(x, w_self_, y);
  const int cout = y->cols();

  const int nl = GatherSide(tree.left, x, top, nullptr, &scratch->gather,
                            &scratch->lparent);
  if (nl > 0) MatMulPackedInto(scratch->gather, w_left_, &scratch->lcontrib);
  const int nr = GatherSide(tree.right, x, top, nullptr, &scratch->gather,
                            &scratch->rparent);
  if (nr > 0) MatMulPackedInto(scratch->gather, w_right_, &scratch->rcontrib);

  // Fused epilogue; per row the suffix projections are read through the
  // node's segment, in the exact op order of the single-query path — so each
  // output row is bit-identical to ForwardInference with its query alone.
  const float* b = bias_.value.Row(0);
  size_t lc = 0, rc = 0;
  for (int i = 0; i < n; ++i) {
    const bool has_l = lc < scratch->lparent.size() && scratch->lparent[lc] == i;
    const bool has_r = rc < scratch->rparent.size() && scratch->rparent[rc] == i;
    const float* lrow =
        has_l ? scratch->lcontrib.Row(static_cast<int>(lc)) : nullptr;
    const float* rrow =
        has_r ? scratch->rcontrib.Row(static_cast<int>(rc)) : nullptr;
    if (has_l) ++lc;
    if (has_r) ++rc;
    const int seg = node_seg[static_cast<size_t>(i)];
    const float* sps = s > 0 ? scratch->suffix_self.Row(seg) : nullptr;
    const float* spl = s > 0 ? scratch->suffix_left.Row(seg) : nullptr;
    const float* spr = s > 0 ? scratch->suffix_right.Row(seg) : nullptr;
    float* row = y->Row(i);
    for (int c = 0; c < cout; ++c) {
      float v = row[c] + b[c];
      if (sps != nullptr) v += sps[c];
      if (lrow != nullptr) {
        v += lrow[c];
        if (spl != nullptr) v += spl[c];
      }
      if (rrow != nullptr) {
        v += rrow[c];
        if (spr != nullptr) v += spr[c];
      }
      if (leaky_alpha >= 0.0f && v < 0.0f) v *= leaky_alpha;
      row[c] = v;
    }
  }
}

void TreeConv::ForwardInferenceRowsMulti(const TreeStructure& tree,
                                         const Matrix& x,
                                         const std::vector<int>& rows,
                                         const Matrix& suffixes,
                                         const std::vector<int>& node_seg,
                                         Scratch* scratch, Matrix* y,
                                         float leaky_alpha) const {
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes.rows() > 0));
  NEO_CHECK(static_cast<size_t>(x.rows()) == tree.NumNodes());
  NEO_CHECK(node_seg.size() == static_cast<size_t>(x.rows()));
  NEO_CHECK(y->rows() == x.rows() && y->cols() == cout);
  NEO_CHECK(split_fresh_);
  if (rows.empty()) return;
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  const int d = static_cast<int>(rows.size());

  if (s > 0) {
    NEO_CHECK(suffixes.cols() == s);
    MatMulPackedInto(suffixes, w_self_suffix_, &scratch->suffix_self);
    MatMulPackedInto(suffixes, w_left_suffix_, &scratch->suffix_left);
    MatMulPackedInto(suffixes, w_right_suffix_, &scratch->suffix_right);
  }

  scratch->gather.Reshape(d, top);
  for (int r = 0; r < d; ++r) {
    std::copy(x.Row(rows[static_cast<size_t>(r)]),
              x.Row(rows[static_cast<size_t>(r)]) + top, scratch->gather.Row(r));
  }
  MatMulPackedInto(scratch->gather, w_self_, &scratch->self);

  const int nl = GatherSide(tree.left, x, top, &rows, &scratch->gather,
                            &scratch->lparent);
  if (nl > 0) MatMulPackedInto(scratch->gather, w_left_, &scratch->lcontrib);
  const int nr = GatherSide(tree.right, x, top, &rows, &scratch->gather,
                            &scratch->rparent);
  if (nr > 0) MatMulPackedInto(scratch->gather, w_right_, &scratch->rcontrib);

  const float* b = bias_.value.Row(0);
  size_t lc = 0, rc = 0;
  for (int r = 0; r < d; ++r) {
    const int node = rows[static_cast<size_t>(r)];
    const bool has_l =
        lc < scratch->lparent.size() && scratch->lparent[lc] == node;
    const bool has_r =
        rc < scratch->rparent.size() && scratch->rparent[rc] == node;
    const float* lrow =
        has_l ? scratch->lcontrib.Row(static_cast<int>(lc)) : nullptr;
    const float* rrow =
        has_r ? scratch->rcontrib.Row(static_cast<int>(rc)) : nullptr;
    if (has_l) ++lc;
    if (has_r) ++rc;
    const int seg = node_seg[static_cast<size_t>(node)];
    const float* sps = s > 0 ? scratch->suffix_self.Row(seg) : nullptr;
    const float* spl = s > 0 ? scratch->suffix_left.Row(seg) : nullptr;
    const float* spr = s > 0 ? scratch->suffix_right.Row(seg) : nullptr;
    float* dst = y->Row(node);
    const float* src = scratch->self.Row(r);
    for (int c = 0; c < cout; ++c) {
      float v = src[c] + b[c];
      if (sps != nullptr) v += sps[c];
      if (lrow != nullptr) {
        v += lrow[c];
        if (spl != nullptr) v += spl[c];
      }
      if (rrow != nullptr) {
        v += rrow[c];
        if (spr != nullptr) v += spr[c];
      }
      if (leaky_alpha >= 0.0f && v < 0.0f) v *= leaky_alpha;
      dst[c] = v;
    }
  }
}

Matrix TreeConv::Backward(const TreeStructure& tree, const Matrix& x,
                          const Matrix& grad_out, const TreeGather* gather,
                          TrainScratch* scratch) {
  // Training implies an imminent weight update: invalidate the inference
  // split so ForwardInference cannot silently use stale weights.
  split_fresh_ = false;
  const int n = grad_out.rows();
  const int cin = in_channels_;
  const int cout = grad_out.cols();
  NEO_CHECK(cout == weight_.value.cols());
  NEO_CHECK(x.rows() == n && x.cols() == cin);

  // Bias gradient: serial ascending-row reduction (fixed order, cheap).
  for (int i = 0; i < n; ++i) {
    const float* g = grad_out.Row(i);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < cout; ++c) b[c] += g[c];
  }

  if (UseReferenceKernels()) {
    // Seed-path reconstruction: dense concat round-trip (uses the concat
    // cached by the matching reference Forward).
    NEO_CHECK(last_concat_.rows() == n);
    weight_.grad.Add(MatMulTransposeA(last_concat_, grad_out));
    const Matrix grad_concat = MatMulTransposeB(grad_out, weight_.value);
    Matrix grad_in(n, cin);
    for (int i = 0; i < n; ++i) {
      const float* g = grad_concat.Row(i);
      float* self = grad_in.Row(i);
      for (int c = 0; c < cin; ++c) self[c] += g[c];
      const int l = tree.left[static_cast<size_t>(i)];
      if (l >= 0) {
        float* lv = grad_in.Row(l);
        for (int c = 0; c < cin; ++c) lv[c] += g[cin + c];
      }
      const int r = tree.right[static_cast<size_t>(i)];
      if (r >= 0) {
        float* rv = grad_in.Row(r);
        for (int c = 0; c < cin; ++c) rv[c] += g[2 * cin + c];
      }
    }
    return grad_in;
  }

  TreeGather local;
  if (gather == nullptr) {
    local = TreeGather::Build(tree);
    gather = &local;
  }
  TrainScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const bool sparse = SparseTrainingConv();

  // Self block: dW_p += x^T g, scatter-added straight into the gradient's
  // first cin rows; dx = g W_p^T seeds grad_in (every node has a self term).
  MatMulTransposeAInto(x, grad_out, weight_.grad.Row(0), &scratch->gemm);
  Matrix grad_in;
  MatMulTransposeBBlockInto(grad_out, weight_.value.Row(0), cin, &grad_in,
                            &scratch->gemm);
  train_stats_.backward_madds +=
      2ULL * static_cast<uint64_t>(n) * static_cast<uint64_t>(cin) * cout;

  // Child blocks. Per side: accumulate dW_blk += x[children]^T g[parents] in
  // place, then scatter g[parents] W_blk^T to the child rows of grad_in.
  // Sparse mode reads both gathers through index lists (zero-copy); the
  // dense fallback materializes the zero-padded child gather and spans all
  // rows. Each node is at most one parent's child, so no grad_in row is
  // touched twice per side and the scatter partitions race-free.
  auto side_backward = [&](const SideGather& side, int blk) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) return;
    Matrix& contrib = scratch->lcontrib;
    if (sparse) {
      // dW_blk += x[child]^T grad_out[parent]; zero rows the dense mode
      // carries are exact no-ops in every MatMulTransposeAInto strategy, so
      // both modes produce identical bits.
      MatMulGatherTransposeAInto(x, side.child.data(), grad_out,
                                 side.parent.data(), present,
                                 weight_.grad.Row(blk * cin), &scratch->gemm);
      MatMulGatherTransposeBBlockInto(grad_out, side.parent.data(), present,
                                      weight_.value.Row(blk * cin), cin,
                                      &contrib, &scratch->gemm);
    } else {
      Matrix& gx = scratch->gather;
      gx.Reshape(n, cin);
      gx.Zero();  // Reshape may retain junk; absent rows must be 0.
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + cin,
                    gx.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulTransposeAInto(gx, grad_out, weight_.grad.Row(blk * cin),
                           &scratch->gemm);
      MatMulTransposeBBlockInto(grad_out, weight_.value.Row(blk * cin), cin,
                                &contrib, &scratch->gemm);
    }

    // dx_child += contrib, scattered to the child rows. Dense mode computes
    // contrib for every node but scatters only present children — the same
    // rows, values, and order as sparse mode.
    ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int src_row = sparse ? static_cast<int>(r)
                                   : side.parent[static_cast<size_t>(r)];
        float* dst = grad_in.Row(side.child[static_cast<size_t>(r)]);
        const float* src = contrib.Row(src_row);
        for (int c = 0; c < cin; ++c) dst[c] += src[c];
      }
    });
    train_stats_.backward_madds +=
        2ULL * static_cast<uint64_t>(rows) * static_cast<uint64_t>(cin) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (cin + cout) * sizeof(float) +
        static_cast<uint64_t>(present) * cin * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  side_backward(gather->left, 1);
  side_backward(gather->right, 2);
  return grad_in;
}

void TreeConv::BackwardTrain(const TreeStructure& tree, const Matrix& x,
                             const Matrix* suffixes, const int* node_seg,
                             const Matrix& grad_out, const TreeGather& gather,
                             TrainScratch* scratch, Matrix* grad_in,
                             Matrix* grad_suffix) {
  NEO_CHECK_MSG(!UseReferenceKernels(),
                "BackwardTrain is the fast path; reference mode keeps the "
                "seed concat Backward");
  split_fresh_ = false;
  const int n = grad_out.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cin = in_channels_;
  const int cout = grad_out.cols();
  NEO_CHECK(cout == weight_.value.cols());
  NEO_CHECK(x.rows() == n && x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes != nullptr));
  // Input gradients flow only through suffix-free (deeper) layers; layer 0's
  // varying channels are leaf inputs, so their gradient is never computed.
  NEO_CHECK(grad_in == nullptr || s == 0);
  NEO_CHECK(grad_suffix == nullptr || s > 0);
  NEO_CHECK(scratch != nullptr);
  const bool sparse = SparseTrainingConv();
  const int batch = s > 0 ? suffixes->rows() : 1;

  // Bias gradient: serial ascending-row reduction (fixed order, cheap).
  for (int i = 0; i < n; ++i) {
    const float* g = grad_out.Row(i);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < cout; ++c) b[c] += g[c];
  }

  // Per-sample segment sums of grad rows over the nodes a block touches:
  // G_b[k] = sum of grad_out rows (ascending node order — forests pack
  // sample-contiguously, so this is also ascending within each sample) whose
  // b-child is present and whose node belongs to sample k. Both training
  // modes iterate the SAME side lists, so sparse and dense stay
  // bit-identical by construction.
  auto seg_sum = [&](const SideGather* side) {
    Matrix& G = scratch->seg_grad;
    G.Reshape(batch, cout);
    G.Zero();
    if (side == nullptr) {
      for (int i = 0; i < n; ++i) {
        float* dst = G.Row(node_seg != nullptr ? node_seg[i] : 0);
        const float* g = grad_out.Row(i);
        for (int c = 0; c < cout; ++c) dst[c] += g[c];
      }
    } else {
      for (size_t t = 0; t < side->parent.size(); ++t) {
        const int p = side->parent[t];
        float* dst = G.Row(node_seg != nullptr ? node_seg[p] : 0);
        const float* g = grad_out.Row(p);
        for (int c = 0; c < cout; ++c) dst[c] += g[c];
      }
    }
  };

  // Suffix sub-block of block `blk`: dW_suf += E^T G_b (one small GEMM per
  // block per step instead of per node), and the suffix (query-embedding)
  // gradient accumulates G_b W_suf^T in self/left/right order.
  auto suffix_backward = [&](const SideGather* side, int blk) {
    if (s == 0) return;
    if (side != nullptr && side->parent.empty()) return;
    seg_sum(side);
    MatMulTransposeAInto(*suffixes, scratch->seg_grad,
                         weight_.grad.Row(blk * cin + top), &scratch->gemm);
    if (grad_suffix != nullptr) {
      MatMulTransposeBBlockInto(scratch->seg_grad,
                                weight_.value.Row(blk * cin + top), s,
                                &scratch->sgrad_tmp, &scratch->gemm);
      if (blk == 0) {
        *grad_suffix = scratch->sgrad_tmp;
      } else {
        grad_suffix->Add(scratch->sgrad_tmp);
      }
    }
    train_stats_.backward_madds +=
        2ULL * static_cast<uint64_t>(batch) * static_cast<uint64_t>(s) * cout;
  };

  // Self block: dW_top += x^T g; dx = g W_top^T seeds grad_in when asked.
  MatMulTransposeAInto(x, grad_out, weight_.grad.Row(0), &scratch->gemm);
  suffix_backward(nullptr, 0);
  if (grad_in != nullptr) {
    MatMulTransposeBBlockInto(grad_out, weight_.value.Row(0), top, grad_in,
                              &scratch->gemm);
  }
  train_stats_.backward_madds +=
      2ULL * static_cast<uint64_t>(n) * static_cast<uint64_t>(top) * cout;

  // Side top blocks (see Backward's side_backward for the mode notes).
  auto side_backward = [&](const SideGather& side, int blk) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) return;
    Matrix& contrib = scratch->lcontrib;
    if (sparse) {
      MatMulGatherTransposeAInto(x, side.child.data(), grad_out,
                                 side.parent.data(), present,
                                 weight_.grad.Row(blk * cin), &scratch->gemm);
      if (grad_in != nullptr) {
        MatMulGatherTransposeBBlockInto(grad_out, side.parent.data(), present,
                                        weight_.value.Row(blk * cin), top,
                                        &contrib, &scratch->gemm);
      }
    } else {
      Matrix& gx = scratch->gather;
      gx.Reshape(n, top);
      gx.Zero();  // Reshape may retain junk; absent rows must be 0.
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + top,
                    gx.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulTransposeAInto(gx, grad_out, weight_.grad.Row(blk * cin),
                           &scratch->gemm);
      if (grad_in != nullptr) {
        MatMulTransposeBBlockInto(grad_out, weight_.value.Row(blk * cin), top,
                                  &contrib, &scratch->gemm);
      }
    }
    suffix_backward(&side, blk);
    if (grad_in != nullptr) {
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int src_row = sparse ? static_cast<int>(r)
                                     : side.parent[static_cast<size_t>(r)];
          float* dst = grad_in->Row(side.child[static_cast<size_t>(r)]);
          const float* src = contrib.Row(src_row);
          for (int c = 0; c < top; ++c) dst[c] += src[c];
        }
      });
    }
    train_stats_.backward_madds +=
        2ULL * static_cast<uint64_t>(rows) * static_cast<uint64_t>(top) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (top + cout) * sizeof(float) +
        static_cast<uint64_t>(present) * top * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  side_backward(gather.left, 1);
  side_backward(gather.right, 2);
}

Matrix DynamicPooling::Forward(const Matrix& x) {
  NEO_CHECK(x.rows() > 0);
  const std::vector<int> offsets = {0, x.rows()};
  return Forward(x, offsets);
}

namespace {

/// Per-channel max over rows [begin, end) of x into yrow; `amax` (optional)
/// records the winning row per channel for the backward pass.
inline void PoolSegment(const Matrix& x, int begin, int end, float* yrow,
                        int* amax) {
  const int d = x.cols();
  NEO_CHECK(end > begin);  // Every tree has at least one node.
  const float* first = x.Row(begin);
  for (int c = 0; c < d; ++c) {
    yrow[c] = first[c];
    if (amax != nullptr) amax[c] = begin;
  }
  for (int r = begin + 1; r < end; ++r) {
    const float* row = x.Row(r);
    for (int c = 0; c < d; ++c) {
      if (row[c] > yrow[c]) {
        yrow[c] = row[c];
        if (amax != nullptr) amax[c] = r;
      }
    }
  }
}

}  // namespace

Matrix DynamicPooling::Forward(const Matrix& x, const std::vector<int>& offsets) {
  Matrix y;
  ForwardInto(x, offsets, &y);
  return y;
}

void DynamicPooling::ForwardInto(const Matrix& x, const std::vector<int>& offsets,
                                 Matrix* y) {
  const int d = x.cols();
  NEO_CHECK(offsets.size() >= 2);
  const int segments = static_cast<int>(offsets.size()) - 1;
  NEO_CHECK(offsets.front() == 0 && offsets.back() == x.rows());
  last_rows_ = x.rows();
  last_segments_ = segments;
  argmax_.assign(static_cast<size_t>(segments) * d, 0);
  y->Reshape(segments, d);  // Fully overwritten by PoolSegment.
  ParallelRows(segments, /*min_parallel=*/64, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      PoolSegment(x, offsets[static_cast<size_t>(s)],
                  offsets[static_cast<size_t>(s) + 1], y->Row(static_cast<int>(s)),
                  argmax_.data() + static_cast<size_t>(s) * d);
    }
  });
}

Matrix DynamicPooling::ForwardInference(const Matrix& x,
                                        const std::vector<int>& offsets) const {
  Matrix y;
  ForwardInferenceInto(x, offsets, &y);
  return y;
}

void DynamicPooling::ForwardInferenceInto(const Matrix& x,
                                          const std::vector<int>& offsets,
                                          Matrix* y) const {
  const int d = x.cols();
  NEO_CHECK(offsets.size() >= 2);
  const int segments = static_cast<int>(offsets.size()) - 1;
  NEO_CHECK(offsets.front() == 0 && offsets.back() == x.rows());
  y->Reshape(segments, d);  // Fully overwritten by PoolSegment.
  ParallelRows(segments, /*min_parallel=*/64, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      PoolSegment(x, offsets[static_cast<size_t>(s)],
                  offsets[static_cast<size_t>(s) + 1], y->Row(static_cast<int>(s)),
                  nullptr);
    }
  });
}

Matrix DynamicPooling::Backward(const Matrix& grad_out) {
  Matrix grad_in;
  BackwardInto(grad_out, &grad_in);
  return grad_in;
}

void DynamicPooling::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  NEO_CHECK(grad_out.rows() == last_segments_);
  const int d = grad_out.cols();
  grad_in->Reshape(last_rows_, d);
  grad_in->Zero();
  for (int s = 0; s < grad_out.rows(); ++s) {
    const int* amax = argmax_.data() + static_cast<size_t>(s) * d;
    const float* g = grad_out.Row(s);
    for (int c = 0; c < d; ++c) grad_in->At(amax[c], c) += g[c];
  }
}

}  // namespace neo::nn
