#include "src/nn/tree_conv.h"

namespace neo::nn {

TreeConv::TreeConv(int in_channels, int out_channels, util::Rng& rng)
    : in_channels_(in_channels) {
  weight_.value = Matrix(3 * in_channels, out_channels);
  weight_.value.InitKaiming(rng, 3 * in_channels);
  weight_.grad = Matrix(3 * in_channels, out_channels);
  bias_.value = Matrix(1, out_channels);
  bias_.grad = Matrix(1, out_channels);
}

Matrix TreeConv::Forward(const TreeStructure& tree, const Matrix& x) {
  const int n = x.rows();
  const int cin = in_channels_;
  NEO_CHECK(x.cols() == cin);
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());

  // Build the concatenated (node, left, right) features.
  last_concat_ = Matrix(n, 3 * cin);
  for (int i = 0; i < n; ++i) {
    float* dst = last_concat_.Row(i);
    const float* self = x.Row(i);
    for (int c = 0; c < cin; ++c) dst[c] = self[c];
    const int l = tree.left[static_cast<size_t>(i)];
    if (l >= 0) {
      const float* lv = x.Row(l);
      for (int c = 0; c < cin; ++c) dst[cin + c] = lv[c];
    }
    const int r = tree.right[static_cast<size_t>(i)];
    if (r >= 0) {
      const float* rv = x.Row(r);
      for (int c = 0; c < cin; ++c) dst[2 * cin + c] = rv[c];
    }
  }
  Matrix y = MatMul(last_concat_, weight_.value);
  for (int i = 0; i < n; ++i) {
    float* row = y.Row(i);
    const float* b = bias_.value.Row(0);
    for (int c = 0; c < y.cols(); ++c) row[c] += b[c];
  }
  return y;
}

Matrix TreeConv::Backward(const TreeStructure& tree, const Matrix& grad_out) {
  const int n = grad_out.rows();
  const int cin = in_channels_;

  weight_.grad.Add(MatMulTransposeA(last_concat_, grad_out));
  for (int i = 0; i < n; ++i) {
    const float* g = grad_out.Row(i);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < grad_out.cols(); ++c) b[c] += g[c];
  }

  // Gradient w.r.t. the concatenated input, then scatter to node / children.
  const Matrix grad_concat = MatMulTransposeB(grad_out, weight_.value);
  Matrix grad_in(n, cin);
  for (int i = 0; i < n; ++i) {
    const float* g = grad_concat.Row(i);
    float* self = grad_in.Row(i);
    for (int c = 0; c < cin; ++c) self[c] += g[c];
    const int l = tree.left[static_cast<size_t>(i)];
    if (l >= 0) {
      float* lv = grad_in.Row(l);
      for (int c = 0; c < cin; ++c) lv[c] += g[cin + c];
    }
    const int r = tree.right[static_cast<size_t>(i)];
    if (r >= 0) {
      float* rv = grad_in.Row(r);
      for (int c = 0; c < cin; ++c) rv[c] += g[2 * cin + c];
    }
  }
  return grad_in;
}

Matrix DynamicPooling::Forward(const Matrix& x) {
  const int n = x.rows(), d = x.cols();
  NEO_CHECK(n > 0);
  last_rows_ = n;
  argmax_.assign(static_cast<size_t>(d), 0);
  Matrix y(1, d);
  for (int c = 0; c < d; ++c) {
    float best = x.At(0, c);
    int best_row = 0;
    for (int r = 1; r < n; ++r) {
      if (x.At(r, c) > best) {
        best = x.At(r, c);
        best_row = r;
      }
    }
    y.At(0, c) = best;
    argmax_[static_cast<size_t>(c)] = best_row;
  }
  return y;
}

Matrix DynamicPooling::Backward(const Matrix& grad_out) {
  Matrix grad_in(last_rows_, grad_out.cols());
  for (int c = 0; c < grad_out.cols(); ++c) {
    grad_in.At(argmax_[static_cast<size_t>(c)], c) = grad_out.At(0, c);
  }
  return grad_in;
}

}  // namespace neo::nn
