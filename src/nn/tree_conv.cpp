#include "src/nn/tree_conv.h"

#include <cstdlib>
#include <cstring>



namespace neo::nn {

namespace {

bool DefaultSparseTraining() {
  const char* e = std::getenv("NEO_DENSE_TRAINING");
  return !(e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0);
}

bool& SparseTrainingFlag() {
  static bool sparse = DefaultSparseTraining();
  return sparse;
}

}  // namespace

void SetSparseTrainingConv(bool sparse) { SparseTrainingFlag() = sparse; }
bool SparseTrainingConv() { return SparseTrainingFlag(); }

TreeGather TreeGather::Build(const TreeStructure& tree) {
  TreeGather g;
  const size_t n = tree.NumNodes();
  for (size_t i = 0; i < n; ++i) {
    if (tree.left[i] >= 0) {
      g.left.parent.push_back(static_cast<int>(i));
      g.left.child.push_back(tree.left[i]);
    }
    if (tree.right[i] >= 0) {
      g.right.parent.push_back(static_cast<int>(i));
      g.right.child.push_back(tree.right[i]);
    }
  }
  return g;
}

TreeConv::TreeConv(int in_channels, int out_channels, util::Rng& rng,
                   int shared_suffix_dim)
    : in_channels_(in_channels), shared_suffix_dim_(shared_suffix_dim) {
  NEO_CHECK(shared_suffix_dim >= 0 && shared_suffix_dim < in_channels);
  weight_.value = Matrix(3 * in_channels, out_channels);
  weight_.value.InitKaiming(rng, 3 * in_channels);
  weight_.grad = Matrix(3 * in_channels, out_channels);
  bias_.value = Matrix(1, out_channels);
  bias_.grad = Matrix(1, out_channels);
}

Matrix TreeConv::Forward(const TreeStructure& tree, const Matrix& x,
                         const TreeGather* gather, TrainScratch* scratch) {
  const int n = x.rows();
  const int cin = in_channels_;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == cin);
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());

  if (UseReferenceKernels()) {
    // Seed-path reconstruction (benches): dense (node, left, right) concat
    // through one big GEMM, cached for the matching reference Backward.
    last_concat_ = Matrix(n, 3 * cin);
    ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* dst = last_concat_.Row(static_cast<int>(i));
        const float* self = x.Row(static_cast<int>(i));
        for (int c = 0; c < cin; ++c) dst[c] = self[c];
        const int l = tree.left[static_cast<size_t>(i)];
        if (l >= 0) {
          const float* lv = x.Row(l);
          for (int c = 0; c < cin; ++c) dst[cin + c] = lv[c];
        }
        const int r = tree.right[static_cast<size_t>(i)];
        if (r >= 0) {
          const float* rv = x.Row(r);
          for (int c = 0; c < cin; ++c) dst[2 * cin + c] = rv[c];
        }
      }
    });
    Matrix y = MatMul(last_concat_, weight_.value);
    const float* b = bias_.value.Row(0);
    ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* row = y.Row(static_cast<int>(i));
        for (int c = 0; c < y.cols(); ++c) row[c] += b[c];
      }
    });
    return y;
  }

  TreeGather local;
  if (gather == nullptr) {
    local = TreeGather::Build(tree);
    gather = &local;
  }
  TrainScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const bool sparse = SparseTrainingConv();

  // Self block + bias. The bias is added here — before the child scatters —
  // in both modes, so the per-element op sequence is mode-independent.
  Matrix y = MatMulBlock(x, weight_.value.Row(0), cin, cout);
  const float* b = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* row = y.Row(static_cast<int>(i));
      for (int c = 0; c < cout; ++c) row[c] += b[c];
    }
  });
  train_stats_.forward_madds +=
      static_cast<uint64_t>(n) * static_cast<uint64_t>(cin) * cout;

  // Child blocks: gather, one block GEMM, scatter-add. Each parent appears
  // once per side, so the scatter partitions race-free over gather rows.
  // Sparse mode never materializes the gather: the GEMM reads the present
  // children's rows through the index list (bit-identical to gathering
  // first). The dense fallback builds the zero-padded gather explicitly —
  // that padding IS its cost model.
  auto add_side = [&](const SideGather& side, int blk) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) return;
    Matrix& contrib = scratch->contrib;
    if (sparse) {
      MatMulGatherBlockInto(x, side.child.data(), present,
                            weight_.value.Row(blk * cin), cin, cout, &contrib,
                            &scratch->gemm);
    } else {
      Matrix& g = scratch->gather;
      g.Reshape(n, cin);
      // Row i is node i's child features or stays zero (the reshape may
      // retain junk, so zero explicitly before the copies).
      g.Zero();
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + cin,
                    g.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulBlockInto(g, weight_.value.Row(blk * cin), cin, cout, &contrib,
                      &scratch->gemm);
    }
    ParallelRows(rows, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float* dst = y.Row(sparse ? side.parent[static_cast<size_t>(r)]
                                  : static_cast<int>(r));
        const float* src = contrib.Row(static_cast<int>(r));
        for (int c = 0; c < cout; ++c) dst[c] += src[c];
      }
    });
    train_stats_.forward_madds +=
        static_cast<uint64_t>(rows) * static_cast<uint64_t>(cin) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (cin + cout) * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  add_side(gather->left, 1);
  add_side(gather->right, 2);
  return y;
}

void TreeConv::RefreshInferenceWeights() {
  const int cin = in_channels_;
  const int s = shared_suffix_dim_;
  const int top = cin - s;
  const int cout = weight_.value.cols();
  // Block b of the stacked weight occupies rows [b*cin, (b+1)*cin): the first
  // `top` rows multiply the varying channels, the last `s` the shared suffix.
  // Each block is a contiguous row range, so it packs straight from weight_
  // (copy + panel build — the pre-pack is what lets every ForwardInference
  // GEMM skip the per-call B pack under the SIMD dispatch arms).
  PackedB* tops[3] = {&w_self_, &w_left_, &w_right_};
  PackedB* suffixes[3] = {&w_self_suffix_, &w_left_suffix_, &w_right_suffix_};
  for (int blk = 0; blk < 3; ++blk) {
    const float* src = weight_.value.Row(blk * cin);
    tops[blk]->Assign(src, top, cout);
    if (s > 0) {
      suffixes[blk]->Assign(src + static_cast<size_t>(top) * cout, s, cout);
    }
  }
  split_fresh_ = true;
}

Matrix TreeConv::ForwardInference(const TreeStructure& tree, const Matrix& x,
                                  const Matrix* shared_suffix,
                                  Scratch* scratch) const {
  const int n = x.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (shared_suffix != nullptr));
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());
  NEO_CHECK(split_fresh_);
  Scratch local;
  if (scratch == nullptr) scratch = &local;

  // Per-call suffix projections: the shared channels contribute the same
  // (1 x out) vector to every node (per present block), computed once.
  Matrix suffix_self, suffix_left, suffix_right;
  if (s > 0) {
    NEO_CHECK(shared_suffix->cols() == s);
    suffix_self = MatMulPacked(*shared_suffix, w_self_suffix_);
    suffix_left = MatMulPacked(*shared_suffix, w_left_suffix_);
    suffix_right = MatMulPacked(*shared_suffix, w_right_suffix_);
  }

  // Self block + bias (+ self-suffix projection) for every node.
  Matrix y = MatMulPacked(x, w_self_);
  const int cout = y.cols();
  const float* b = bias_.value.Row(0);
  const float* sp = s > 0 ? suffix_self.Row(0) : nullptr;
  for (int i = 0; i < n; ++i) {
    float* row = y.Row(i);
    for (int c = 0; c < cout; ++c) row[c] += b[c];
    if (sp != nullptr) {
      for (int c = 0; c < cout; ++c) row[c] += sp[c];
    }
  }

  // Child blocks: gather present children, one GEMM per side, scatter-add.
  // MatMul rows are independent, so each node's contribution is the same
  // regardless of which other nodes share the gather.
  auto add_side = [&](const std::vector<int>& child, const PackedB& w,
                      const Matrix& suffix_proj) {
    int present = 0;
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] >= 0) ++present;
    }
    if (present == 0) return;
    if (scratch->gather.rows() != present || scratch->gather.cols() != top) {
      scratch->gather = Matrix(present, top);
    }
    scratch->parent.assign(static_cast<size_t>(present), 0);
    int t = 0;
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] < 0) continue;
      std::copy(x.Row(child[i]), x.Row(child[i]) + top, scratch->gather.Row(t));
      scratch->parent[static_cast<size_t>(t)] = static_cast<int>(i);
      ++t;
    }
    const Matrix contrib = MatMulPacked(scratch->gather, w);
    const float* proj = s > 0 ? suffix_proj.Row(0) : nullptr;
    for (int r = 0; r < present; ++r) {
      float* dst = y.Row(scratch->parent[static_cast<size_t>(r)]);
      const float* src = contrib.Row(r);
      for (int c = 0; c < cout; ++c) dst[c] += src[c];
      if (proj != nullptr) {
        for (int c = 0; c < cout; ++c) dst[c] += proj[c];
      }
    }
  };
  add_side(tree.left, w_left_, suffix_left);
  add_side(tree.right, w_right_, suffix_right);
  return y;
}

void TreeConv::ForwardInferenceRows(const TreeStructure& tree, const Matrix& x,
                                    const std::vector<int>& rows,
                                    const Matrix* shared_suffix, Scratch* scratch,
                                    Matrix* y) const {
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (shared_suffix != nullptr));
  NEO_CHECK(static_cast<size_t>(x.rows()) == tree.NumNodes());
  NEO_CHECK(y->rows() == x.rows() && y->cols() == cout);
  NEO_CHECK(split_fresh_);
  if (rows.empty()) return;
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  const int d = static_cast<int>(rows.size());

  Matrix suffix_self, suffix_left, suffix_right;
  if (s > 0) {
    NEO_CHECK(shared_suffix->cols() == s);
    suffix_self = MatMulPacked(*shared_suffix, w_self_suffix_);
    suffix_left = MatMulPacked(*shared_suffix, w_left_suffix_);
    suffix_right = MatMulPacked(*shared_suffix, w_right_suffix_);
  }

  auto regather = [&](int count) {
    if (scratch->gather.rows() != count || scratch->gather.cols() != top) {
      scratch->gather = Matrix(count, top);
    }
  };

  // Self block + bias (+ self-suffix projection), gathered over dirty rows.
  regather(d);
  for (int r = 0; r < d; ++r) {
    std::copy(x.Row(rows[static_cast<size_t>(r)]),
              x.Row(rows[static_cast<size_t>(r)]) + top, scratch->gather.Row(r));
  }
  const Matrix self = MatMulPacked(scratch->gather, w_self_);
  const float* b = bias_.value.Row(0);
  const float* sp = s > 0 ? suffix_self.Row(0) : nullptr;
  for (int r = 0; r < d; ++r) {
    float* dst = y->Row(rows[static_cast<size_t>(r)]);
    const float* src = self.Row(r);
    for (int c = 0; c < cout; ++c) dst[c] = src[c] + b[c];
    if (sp != nullptr) {
      for (int c = 0; c < cout; ++c) dst[c] += sp[c];
    }
  }

  // Child blocks restricted to the dirty rows' present children.
  auto add_side = [&](const std::vector<int>& child, const PackedB& w,
                      const Matrix& suffix_proj) {
    int present = 0;
    for (const int r : rows) {
      if (child[static_cast<size_t>(r)] >= 0) ++present;
    }
    if (present == 0) return;
    regather(present);
    scratch->parent.assign(static_cast<size_t>(present), 0);
    int t = 0;
    for (const int r : rows) {
      const int c = child[static_cast<size_t>(r)];
      if (c < 0) continue;
      std::copy(x.Row(c), x.Row(c) + top, scratch->gather.Row(t));
      scratch->parent[static_cast<size_t>(t)] = r;
      ++t;
    }
    const Matrix contrib = MatMulPacked(scratch->gather, w);
    const float* proj = s > 0 ? suffix_proj.Row(0) : nullptr;
    for (int r = 0; r < present; ++r) {
      float* dst = y->Row(scratch->parent[static_cast<size_t>(r)]);
      const float* src = contrib.Row(r);
      for (int c = 0; c < cout; ++c) dst[c] += src[c];
      if (proj != nullptr) {
        for (int c = 0; c < cout; ++c) dst[c] += proj[c];
      }
    }
  };
  add_side(tree.left, w_left_, suffix_left);
  add_side(tree.right, w_right_, suffix_right);
}

Matrix TreeConv::ForwardInferenceMulti(const TreeStructure& tree,
                                       const Matrix& x, const Matrix& suffixes,
                                       const std::vector<int>& node_seg,
                                       Scratch* scratch) const {
  const int n = x.rows();
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes.rows() > 0));
  NEO_CHECK(static_cast<size_t>(n) == tree.NumNodes());
  NEO_CHECK(node_seg.size() == static_cast<size_t>(n));
  NEO_CHECK(split_fresh_);
  Scratch local;
  if (scratch == nullptr) scratch = &local;

  // All K queries' suffix projections in one GEMM per block; row k is
  // bitwise the single-query projection of query k.
  Matrix suffix_self, suffix_left, suffix_right;
  if (s > 0) {
    NEO_CHECK(suffixes.cols() == s);
    suffix_self = MatMulPacked(suffixes, w_self_suffix_);
    suffix_left = MatMulPacked(suffixes, w_left_suffix_);
    suffix_right = MatMulPacked(suffixes, w_right_suffix_);
  }

  // Self block + bias (+ the node's segment's self-suffix row). The add
  // order per row matches ForwardInference exactly: bias, then suffix.
  Matrix y = MatMulPacked(x, w_self_);
  const int cout = y.cols();
  const float* b = bias_.value.Row(0);
  for (int i = 0; i < n; ++i) {
    float* row = y.Row(i);
    for (int c = 0; c < cout; ++c) row[c] += b[c];
    if (s > 0) {
      const float* sp = suffix_self.Row(node_seg[static_cast<size_t>(i)]);
      for (int c = 0; c < cout; ++c) row[c] += sp[c];
    }
  }

  auto add_side = [&](const std::vector<int>& child, const PackedB& w,
                      const Matrix& suffix_proj) {
    int present = 0;
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] >= 0) ++present;
    }
    if (present == 0) return;
    if (scratch->gather.rows() != present || scratch->gather.cols() != top) {
      scratch->gather = Matrix(present, top);
    }
    scratch->parent.assign(static_cast<size_t>(present), 0);
    int t = 0;
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] < 0) continue;
      std::copy(x.Row(child[i]), x.Row(child[i]) + top, scratch->gather.Row(t));
      scratch->parent[static_cast<size_t>(t)] = static_cast<int>(i);
      ++t;
    }
    const Matrix contrib = MatMulPacked(scratch->gather, w);
    for (int r = 0; r < present; ++r) {
      const int p = scratch->parent[static_cast<size_t>(r)];
      float* dst = y.Row(p);
      const float* src = contrib.Row(r);
      for (int c = 0; c < cout; ++c) dst[c] += src[c];
      if (s > 0) {
        const float* proj = suffix_proj.Row(node_seg[static_cast<size_t>(p)]);
        for (int c = 0; c < cout; ++c) dst[c] += proj[c];
      }
    }
  };
  add_side(tree.left, w_left_, suffix_left);
  add_side(tree.right, w_right_, suffix_right);
  return y;
}

void TreeConv::ForwardInferenceRowsMulti(const TreeStructure& tree,
                                         const Matrix& x,
                                         const std::vector<int>& rows,
                                         const Matrix& suffixes,
                                         const std::vector<int>& node_seg,
                                         Scratch* scratch, Matrix* y) const {
  const int s = shared_suffix_dim_;
  const int top = in_channels_ - s;
  const int cout = weight_.value.cols();
  NEO_CHECK(x.cols() == top);
  NEO_CHECK((s > 0) == (suffixes.rows() > 0));
  NEO_CHECK(static_cast<size_t>(x.rows()) == tree.NumNodes());
  NEO_CHECK(node_seg.size() == static_cast<size_t>(x.rows()));
  NEO_CHECK(y->rows() == x.rows() && y->cols() == cout);
  NEO_CHECK(split_fresh_);
  if (rows.empty()) return;
  Scratch local;
  if (scratch == nullptr) scratch = &local;
  const int d = static_cast<int>(rows.size());

  Matrix suffix_self, suffix_left, suffix_right;
  if (s > 0) {
    NEO_CHECK(suffixes.cols() == s);
    suffix_self = MatMulPacked(suffixes, w_self_suffix_);
    suffix_left = MatMulPacked(suffixes, w_left_suffix_);
    suffix_right = MatMulPacked(suffixes, w_right_suffix_);
  }

  auto regather = [&](int count) {
    if (scratch->gather.rows() != count || scratch->gather.cols() != top) {
      scratch->gather = Matrix(count, top);
    }
  };

  regather(d);
  for (int r = 0; r < d; ++r) {
    std::copy(x.Row(rows[static_cast<size_t>(r)]),
              x.Row(rows[static_cast<size_t>(r)]) + top, scratch->gather.Row(r));
  }
  const Matrix self = MatMulPacked(scratch->gather, w_self_);
  const float* b = bias_.value.Row(0);
  for (int r = 0; r < d; ++r) {
    const int node = rows[static_cast<size_t>(r)];
    float* dst = y->Row(node);
    const float* src = self.Row(r);
    for (int c = 0; c < cout; ++c) dst[c] = src[c] + b[c];
    if (s > 0) {
      const float* sp = suffix_self.Row(node_seg[static_cast<size_t>(node)]);
      for (int c = 0; c < cout; ++c) dst[c] += sp[c];
    }
  }

  auto add_side = [&](const std::vector<int>& child, const PackedB& w,
                      const Matrix& suffix_proj) {
    int present = 0;
    for (const int r : rows) {
      if (child[static_cast<size_t>(r)] >= 0) ++present;
    }
    if (present == 0) return;
    regather(present);
    scratch->parent.assign(static_cast<size_t>(present), 0);
    int t = 0;
    for (const int r : rows) {
      const int c = child[static_cast<size_t>(r)];
      if (c < 0) continue;
      std::copy(x.Row(c), x.Row(c) + top, scratch->gather.Row(t));
      scratch->parent[static_cast<size_t>(t)] = r;
      ++t;
    }
    const Matrix contrib = MatMulPacked(scratch->gather, w);
    for (int r = 0; r < present; ++r) {
      const int p = scratch->parent[static_cast<size_t>(r)];
      float* dst = y->Row(p);
      const float* src = contrib.Row(r);
      for (int c = 0; c < cout; ++c) dst[c] += src[c];
      if (s > 0) {
        const float* proj = suffix_proj.Row(node_seg[static_cast<size_t>(p)]);
        for (int c = 0; c < cout; ++c) dst[c] += proj[c];
      }
    }
  };
  add_side(tree.left, w_left_, suffix_left);
  add_side(tree.right, w_right_, suffix_right);
}

Matrix TreeConv::Backward(const TreeStructure& tree, const Matrix& x,
                          const Matrix& grad_out, const TreeGather* gather,
                          TrainScratch* scratch) {
  // Training implies an imminent weight update: invalidate the inference
  // split so ForwardInference cannot silently use stale weights.
  split_fresh_ = false;
  const int n = grad_out.rows();
  const int cin = in_channels_;
  const int cout = grad_out.cols();
  NEO_CHECK(cout == weight_.value.cols());
  NEO_CHECK(x.rows() == n && x.cols() == cin);

  // Bias gradient: serial ascending-row reduction (fixed order, cheap).
  for (int i = 0; i < n; ++i) {
    const float* g = grad_out.Row(i);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < cout; ++c) b[c] += g[c];
  }

  if (UseReferenceKernels()) {
    // Seed-path reconstruction: dense concat round-trip (uses the concat
    // cached by the matching reference Forward).
    NEO_CHECK(last_concat_.rows() == n);
    weight_.grad.Add(MatMulTransposeA(last_concat_, grad_out));
    const Matrix grad_concat = MatMulTransposeB(grad_out, weight_.value);
    Matrix grad_in(n, cin);
    for (int i = 0; i < n; ++i) {
      const float* g = grad_concat.Row(i);
      float* self = grad_in.Row(i);
      for (int c = 0; c < cin; ++c) self[c] += g[c];
      const int l = tree.left[static_cast<size_t>(i)];
      if (l >= 0) {
        float* lv = grad_in.Row(l);
        for (int c = 0; c < cin; ++c) lv[c] += g[cin + c];
      }
      const int r = tree.right[static_cast<size_t>(i)];
      if (r >= 0) {
        float* rv = grad_in.Row(r);
        for (int c = 0; c < cin; ++c) rv[c] += g[2 * cin + c];
      }
    }
    return grad_in;
  }

  TreeGather local;
  if (gather == nullptr) {
    local = TreeGather::Build(tree);
    gather = &local;
  }
  TrainScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  const bool sparse = SparseTrainingConv();

  // Self block: dW_p += x^T g, scatter-added straight into the gradient's
  // first cin rows; dx = g W_p^T seeds grad_in (every node has a self term).
  MatMulTransposeAInto(x, grad_out, weight_.grad.Row(0), &scratch->gemm);
  Matrix grad_in;
  MatMulTransposeBBlockInto(grad_out, weight_.value.Row(0), cin, &grad_in,
                            &scratch->gemm);
  train_stats_.backward_madds +=
      2ULL * static_cast<uint64_t>(n) * static_cast<uint64_t>(cin) * cout;

  // Child blocks. Per side: accumulate dW_blk += x[children]^T g[parents] in
  // place, then scatter g[parents] W_blk^T to the child rows of grad_in.
  // Sparse mode reads both gathers through index lists (zero-copy); the
  // dense fallback materializes the zero-padded child gather and spans all
  // rows. Each node is at most one parent's child, so no grad_in row is
  // touched twice per side and the scatter partitions race-free.
  auto side_backward = [&](const SideGather& side, int blk) {
    const int present = static_cast<int>(side.parent.size());
    const int rows = sparse ? present : n;
    if (rows == 0) return;
    Matrix& contrib = scratch->contrib;
    if (sparse) {
      // dW_blk += x[child]^T grad_out[parent]; zero rows the dense mode
      // carries are exact no-ops in every MatMulTransposeAInto strategy, so
      // both modes produce identical bits.
      MatMulGatherTransposeAInto(x, side.child.data(), grad_out,
                                 side.parent.data(), present,
                                 weight_.grad.Row(blk * cin), &scratch->gemm);
      MatMulGatherTransposeBBlockInto(grad_out, side.parent.data(), present,
                                      weight_.value.Row(blk * cin), cin,
                                      &contrib, &scratch->gemm);
    } else {
      Matrix& gx = scratch->gather;
      gx.Reshape(n, cin);
      gx.Zero();  // Reshape may retain junk; absent rows must be 0.
      ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          std::copy(x.Row(side.child[static_cast<size_t>(r)]),
                    x.Row(side.child[static_cast<size_t>(r)]) + cin,
                    gx.Row(side.parent[static_cast<size_t>(r)]));
        }
      });
      MatMulTransposeAInto(gx, grad_out, weight_.grad.Row(blk * cin),
                           &scratch->gemm);
      MatMulTransposeBBlockInto(grad_out, weight_.value.Row(blk * cin), cin,
                                &contrib, &scratch->gemm);
    }

    // dx_child += contrib, scattered to the child rows. Dense mode computes
    // contrib for every node but scatters only present children — the same
    // rows, values, and order as sparse mode.
    ParallelRows(present, /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int src_row = sparse ? static_cast<int>(r)
                                   : side.parent[static_cast<size_t>(r)];
        float* dst = grad_in.Row(side.child[static_cast<size_t>(r)]);
        const float* src = contrib.Row(src_row);
        for (int c = 0; c < cin; ++c) dst[c] += src[c];
      }
    });
    train_stats_.backward_madds +=
        2ULL * static_cast<uint64_t>(rows) * static_cast<uint64_t>(cin) * cout;
    train_stats_.gather_bytes +=
        static_cast<uint64_t>(rows) * (cin + cout) * sizeof(float) +
        static_cast<uint64_t>(present) * cin * sizeof(float);
    if (sparse) train_stats_.rows_skipped += static_cast<uint64_t>(n - present);
  };
  side_backward(gather->left, 1);
  side_backward(gather->right, 2);
  return grad_in;
}

Matrix DynamicPooling::Forward(const Matrix& x) {
  NEO_CHECK(x.rows() > 0);
  const std::vector<int> offsets = {0, x.rows()};
  return Forward(x, offsets);
}

namespace {

/// Per-channel max over rows [begin, end) of x into yrow; `amax` (optional)
/// records the winning row per channel for the backward pass.
inline void PoolSegment(const Matrix& x, int begin, int end, float* yrow,
                        int* amax) {
  const int d = x.cols();
  NEO_CHECK(end > begin);  // Every tree has at least one node.
  const float* first = x.Row(begin);
  for (int c = 0; c < d; ++c) {
    yrow[c] = first[c];
    if (amax != nullptr) amax[c] = begin;
  }
  for (int r = begin + 1; r < end; ++r) {
    const float* row = x.Row(r);
    for (int c = 0; c < d; ++c) {
      if (row[c] > yrow[c]) {
        yrow[c] = row[c];
        if (amax != nullptr) amax[c] = r;
      }
    }
  }
}

}  // namespace

Matrix DynamicPooling::Forward(const Matrix& x, const std::vector<int>& offsets) {
  const int d = x.cols();
  NEO_CHECK(offsets.size() >= 2);
  const int segments = static_cast<int>(offsets.size()) - 1;
  NEO_CHECK(offsets.front() == 0 && offsets.back() == x.rows());
  last_rows_ = x.rows();
  last_segments_ = segments;
  argmax_.assign(static_cast<size_t>(segments) * d, 0);
  Matrix y(segments, d);
  ParallelRows(segments, /*min_parallel=*/64, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      PoolSegment(x, offsets[static_cast<size_t>(s)],
                  offsets[static_cast<size_t>(s) + 1], y.Row(static_cast<int>(s)),
                  argmax_.data() + static_cast<size_t>(s) * d);
    }
  });
  return y;
}

Matrix DynamicPooling::ForwardInference(const Matrix& x,
                                        const std::vector<int>& offsets) const {
  const int d = x.cols();
  NEO_CHECK(offsets.size() >= 2);
  const int segments = static_cast<int>(offsets.size()) - 1;
  NEO_CHECK(offsets.front() == 0 && offsets.back() == x.rows());
  Matrix y(segments, d);
  ParallelRows(segments, /*min_parallel=*/64, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      PoolSegment(x, offsets[static_cast<size_t>(s)],
                  offsets[static_cast<size_t>(s) + 1], y.Row(static_cast<int>(s)),
                  nullptr);
    }
  });
  return y;
}

Matrix DynamicPooling::Backward(const Matrix& grad_out) {
  NEO_CHECK(grad_out.rows() == last_segments_);
  const int d = grad_out.cols();
  Matrix grad_in(last_rows_, d);
  for (int s = 0; s < grad_out.rows(); ++s) {
    const int* amax = argmax_.data() + static_cast<size_t>(s) * d;
    const float* g = grad_out.Row(s);
    for (int c = 0; c < d; ++c) grad_in.At(amax[c], c) += g[c];
  }
  return grad_in;
}

}  // namespace neo::nn
