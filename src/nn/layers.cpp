#include "src/nn/layers.h"

#include <cmath>

namespace neo::nn {

Linear::Linear(int in_dim, int out_dim, util::Rng& rng) {
  weight_.value = Matrix(in_dim, out_dim);
  weight_.value.InitKaiming(rng, in_dim);
  weight_.grad = Matrix(in_dim, out_dim);
  bias_.value = Matrix(1, out_dim);
  bias_.grad = Matrix(1, out_dim);
}

Matrix Linear::Forward(const Matrix& x) {
  last_input_ = x;
  return Apply(x, /*use_packed=*/false);
}

Matrix Linear::ForwardInference(const Matrix& x) const {
  return Apply(x, packed_fresh_);
}

Matrix Linear::Apply(const Matrix& x, bool use_packed) const {
  Matrix y = use_packed ? MatMulPacked(x, packed_weight_)
                        : MatMul(x, weight_.value);
  const float* b = bias_.value.Row(0);
  ParallelRows(y.rows(), /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* row = y.Row(static_cast<int>(r));
      for (int c = 0; c < y.cols(); ++c) row[c] += b[c];
    }
  });
  return y;
}

void Linear::RefreshInferenceWeights() {
  packed_weight_.Assign(weight_.value);
  packed_fresh_ = true;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  // Training implies an imminent weight update: invalidate the packed copy so
  // ForwardInference cannot silently multiply stale weights (same discipline
  // as TreeConv::Backward and its split blocks).
  packed_fresh_ = false;
  // dW += x^T g (scatter-added in place — no product temporary); db +=
  // sum_rows(g) ; dx = g W^T.
  MatMulTransposeAInto(last_input_, grad_out, weight_.grad.data());
  for (int r = 0; r < grad_out.rows(); ++r) {
    const float* g = grad_out.Row(r);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < grad_out.cols(); ++c) b[c] += g[c];
  }
  return MatMulTransposeB(grad_out, weight_.value);
}

Matrix LeakyReLU::Forward(const Matrix& x) {
  last_input_ = x;
  return ForwardInference(x);
}

Matrix LeakyReLU::ForwardInference(const Matrix& x) const {
  Matrix y = x;
  for (size_t i = 0; i < y.Size(); ++i) {
    if (y.data()[i] < 0.0f) y.data()[i] *= alpha_;
  }
  return y;
}

Matrix LeakyReLU::Backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (size_t i = 0; i < g.Size(); ++i) {
    if (last_input_.data()[i] < 0.0f) g.data()[i] *= alpha_;
  }
  return g;
}

LayerNorm::LayerNorm(int dim) {
  gain_.value = Matrix(1, dim);
  for (size_t i = 0; i < gain_.value.Size(); ++i) gain_.value.data()[i] = 1.0f;
  gain_.grad = Matrix(1, dim);
  bias_.value = Matrix(1, dim);
  bias_.grad = Matrix(1, dim);
}

namespace {

/// Normalizes one row and applies gain/bias. `norm_out` (the cached x-hat
/// row) is optional so the inference path can skip the write entirely.
inline void LayerNormRow(const float* row, int d, const float* gain,
                         const float* bias, float eps, float* yrow,
                         float* norm_out, float* inv_std_out) {
  float mean = 0.0f;
  for (int c = 0; c < d; ++c) mean += row[c];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int c = 0; c < d; ++c) {
    const float dv = row[c] - mean;
    var += dv * dv;
  }
  var /= static_cast<float>(d);
  const float inv_std = 1.0f / std::sqrt(var + eps);
  if (inv_std_out != nullptr) *inv_std_out = inv_std;
  for (int c = 0; c < d; ++c) {
    const float norm = (row[c] - mean) * inv_std;
    if (norm_out != nullptr) norm_out[c] = norm;
    yrow[c] = norm * gain[c] + bias[c];
  }
}

}  // namespace

Matrix LayerNorm::Forward(const Matrix& x) {
  const int n = x.rows(), d = x.cols();
  last_norm_ = Matrix(n, d);
  last_inv_std_.assign(static_cast<size_t>(n), 0.0f);
  Matrix y(n, d);
  const float* gain = gain_.value.Row(0);
  const float* bias = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/128, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      LayerNormRow(x.Row(ri), d, gain, bias, kEps, y.Row(ri), last_norm_.Row(ri),
                   &last_inv_std_[static_cast<size_t>(r)]);
    }
  });
  return y;
}

Matrix LayerNorm::ForwardInference(const Matrix& x) const {
  const int n = x.rows(), d = x.cols();
  Matrix y(n, d);
  const float* gain = gain_.value.Row(0);
  const float* bias = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/128, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      LayerNormRow(x.Row(ri), d, gain, bias, kEps, y.Row(ri), nullptr, nullptr);
    }
  });
  return y;
}

Matrix LayerNorm::Backward(const Matrix& grad_out) {
  const int n = grad_out.rows(), d = grad_out.cols();
  Matrix grad_in(n, d);
  dxhat_scratch_.resize(static_cast<size_t>(d));  // One buffer for all rows.
  float* dxhat = dxhat_scratch_.data();
  for (int r = 0; r < n; ++r) {
    const float* g = grad_out.Row(r);
    const float* x_hat = last_norm_.Row(r);
    const float inv_std = last_inv_std_[static_cast<size_t>(r)];
    // Param grads.
    for (int c = 0; c < d; ++c) {
      gain_.grad.At(0, c) += g[c] * x_hat[c];
      bias_.grad.At(0, c) += g[c];
    }
    // dx = (1/std) * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
    float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
    for (int c = 0; c < d; ++c) {
      dxhat[c] = g[c] * gain_.value.At(0, c);
      mean_dxhat += dxhat[c];
      mean_dxhat_xhat += dxhat[c] * x_hat[c];
    }
    mean_dxhat /= static_cast<float>(d);
    mean_dxhat_xhat /= static_cast<float>(d);
    float* out = grad_in.Row(r);
    for (int c = 0; c < d; ++c) {
      out[c] = inv_std * (dxhat[c] - mean_dxhat - x_hat[c] * mean_dxhat_xhat);
    }
  }
  return grad_in;
}

Matrix Sequential::Forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur);
  return cur;
}

Matrix Sequential::ForwardInference(const Matrix& x) const {
  Matrix cur = x;
  for (const auto& layer : layers_) cur = layer->ForwardInference(cur);
  return cur;
}

Matrix Sequential::Backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->Backward(cur);
  }
  return cur;
}

void Sequential::CollectParams(std::vector<Param*>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

void Sequential::RefreshInferenceWeights() {
  for (auto& layer : layers_) layer->RefreshInferenceWeights();
}

void Sequential::InvalidateInferenceWeights() {
  for (auto& layer : layers_) layer->InvalidateInferenceWeights();
}

void Sequential::ReleaseTrainingScratch() {
  for (auto& layer : layers_) layer->ReleaseTrainingScratch();
}

size_t Sequential::TrainingScratchBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer->TrainingScratchBytes();
  return total;
}

}  // namespace neo::nn
