#include "src/nn/layers.h"

#include <cmath>

namespace neo::nn {

Linear::Linear(int in_dim, int out_dim, util::Rng& rng) {
  weight_.value = Matrix(in_dim, out_dim);
  weight_.value.InitKaiming(rng, in_dim);
  weight_.grad = Matrix(in_dim, out_dim);
  bias_.value = Matrix(1, out_dim);
  bias_.grad = Matrix(1, out_dim);
}

Matrix Linear::Forward(const Matrix& x) {
  last_input_ = x;
  return Apply(x, /*use_packed=*/false);
}

Matrix Linear::ForwardInference(const Matrix& x) const {
  return Apply(x, packed_fresh_);
}

void Linear::ForwardInto(const Matrix& x, Matrix* y) {
  last_input_ = x;  // Copy-assign: reuses capacity once warm.
  ApplyInto(x, /*use_packed=*/false, y);
}

void Linear::ForwardInferenceInto(const Matrix& x, Matrix* y) const {
  ApplyInto(x, packed_fresh_, y);
}

Matrix Linear::Apply(const Matrix& x, bool use_packed) const {
  Matrix y;
  ApplyInto(x, use_packed, &y);
  return y;
}

void Linear::GemmInto(const Matrix& x, Matrix* y) const {
  if (packed_fresh_) {
    MatMulPackedInto(x, packed_weight_, y);
  } else {
    MatMulInto(x, weight_.value, y, &gemm_scratch_);
  }
}

void Linear::ApplyInto(const Matrix& x, bool use_packed, Matrix* y) const {
  if (use_packed) {
    MatMulPackedInto(x, packed_weight_, y);
  } else {
    MatMulInto(x, weight_.value, y, &gemm_scratch_);
  }
  const float* b = bias_.value.Row(0);
  const int cols = y->cols();
  ParallelRows(y->rows(), /*min_parallel=*/256, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* row = y->Row(static_cast<int>(r));
      for (int c = 0; c < cols; ++c) row[c] += b[c];
    }
  });
}

void Linear::RefreshInferenceWeights() {
  packed_weight_.Assign(weight_.value);
  packed_fresh_ = true;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  Matrix grad_in;
  BackwardInto(grad_out, &grad_in);
  return grad_in;
}

void Linear::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  // Training implies an imminent weight update: invalidate the packed copy so
  // ForwardInference cannot silently multiply stale weights (same discipline
  // as TreeConv::Backward and its split blocks).
  packed_fresh_ = false;
  // dW += x^T g (scatter-added in place — no product temporary); db +=
  // sum_rows(g) ; dx = g W^T.
  MatMulTransposeAInto(last_input_, grad_out, weight_.grad.data(),
                       &gemm_scratch_);
  for (int r = 0; r < grad_out.rows(); ++r) {
    const float* g = grad_out.Row(r);
    float* b = bias_.grad.Row(0);
    for (int c = 0; c < grad_out.cols(); ++c) b[c] += g[c];
  }
  MatMulTransposeBInto(grad_out, weight_.value, grad_in, &gemm_scratch_);
}

Matrix LeakyReLU::Forward(const Matrix& x) {
  last_input_ = x;
  return ForwardInference(x);
}

Matrix LeakyReLU::ForwardInference(const Matrix& x) const {
  Matrix y = x;
  for (size_t i = 0; i < y.Size(); ++i) {
    if (y.data()[i] < 0.0f) y.data()[i] *= alpha_;
  }
  return y;
}

void LeakyReLU::ForwardInto(const Matrix& x, Matrix* y) {
  last_input_ = x;  // Copy-assign: reuses capacity once warm.
  ForwardInferenceInto(x, y);
}

void LeakyReLU::ForwardInferenceInto(const Matrix& x, Matrix* y) const {
  y->Reshape(x.rows(), x.cols());
  const float* src = x.data();
  float* dst = y->data();
  for (size_t i = 0; i < x.Size(); ++i) {
    const float v = src[i];
    dst[i] = v < 0.0f ? v * alpha_ : v;
  }
}

Matrix LeakyReLU::Backward(const Matrix& grad_out) {
  Matrix g;
  BackwardInto(grad_out, &g);
  return g;
}

void LeakyReLU::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  grad_in->Reshape(grad_out.rows(), grad_out.cols());
  const float* g = grad_out.data();
  const float* x = last_input_.data();
  float* dst = grad_in->data();
  for (size_t i = 0; i < grad_out.Size(); ++i) {
    dst[i] = x[i] < 0.0f ? g[i] * alpha_ : g[i];
  }
}

LayerNorm::LayerNorm(int dim) {
  gain_.value = Matrix(1, dim);
  for (size_t i = 0; i < gain_.value.Size(); ++i) gain_.value.data()[i] = 1.0f;
  gain_.grad = Matrix(1, dim);
  bias_.value = Matrix(1, dim);
  bias_.grad = Matrix(1, dim);
}

namespace {

/// Normalizes one row and applies gain/bias. `norm_out` (the cached x-hat
/// row) is optional so the inference path can skip the write entirely.
inline void LayerNormRow(const float* row, int d, const float* gain,
                         const float* bias, float eps, float* yrow,
                         float* norm_out, float* inv_std_out) {
  float mean = 0.0f;
  for (int c = 0; c < d; ++c) mean += row[c];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int c = 0; c < d; ++c) {
    const float dv = row[c] - mean;
    var += dv * dv;
  }
  var /= static_cast<float>(d);
  const float inv_std = 1.0f / std::sqrt(var + eps);
  if (inv_std_out != nullptr) *inv_std_out = inv_std;
  for (int c = 0; c < d; ++c) {
    const float norm = (row[c] - mean) * inv_std;
    if (norm_out != nullptr) norm_out[c] = norm;
    yrow[c] = norm * gain[c] + bias[c];
  }
}

}  // namespace

Matrix LayerNorm::Forward(const Matrix& x) {
  Matrix y;
  ForwardInto(x, &y);
  return y;
}

void LayerNorm::ForwardInto(const Matrix& x, Matrix* y) {
  const int n = x.rows(), d = x.cols();
  last_norm_.Reshape(n, d);  // Fully overwritten below.
  last_inv_std_.resize(static_cast<size_t>(n));
  y->Reshape(n, d);
  const float* gain = gain_.value.Row(0);
  const float* bias = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/128, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      LayerNormRow(x.Row(ri), d, gain, bias, kEps, y->Row(ri),
                   last_norm_.Row(ri), &last_inv_std_[static_cast<size_t>(r)]);
    }
  });
}

Matrix LayerNorm::ForwardInference(const Matrix& x) const {
  Matrix y;
  ForwardInferenceInto(x, &y);
  return y;
}

void LayerNorm::ForwardInferenceInto(const Matrix& x, Matrix* y) const {
  const int n = x.rows(), d = x.cols();
  y->Reshape(n, d);
  const float* gain = gain_.value.Row(0);
  const float* bias = bias_.value.Row(0);
  ParallelRows(n, /*min_parallel=*/128, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int ri = static_cast<int>(r);
      LayerNormRow(x.Row(ri), d, gain, bias, kEps, y->Row(ri), nullptr, nullptr);
    }
  });
}

Matrix LayerNorm::Backward(const Matrix& grad_out) {
  Matrix grad_in;
  BackwardInto(grad_out, &grad_in);
  return grad_in;
}

void LayerNorm::BackwardInto(const Matrix& grad_out, Matrix* grad_in_out) {
  const int n = grad_out.rows(), d = grad_out.cols();
  grad_in_out->Reshape(n, d);  // Fully overwritten below.
  Matrix& grad_in = *grad_in_out;
  dxhat_scratch_.resize(static_cast<size_t>(d));  // One buffer for all rows.
  float* dxhat = dxhat_scratch_.data();
  for (int r = 0; r < n; ++r) {
    const float* g = grad_out.Row(r);
    const float* x_hat = last_norm_.Row(r);
    const float inv_std = last_inv_std_[static_cast<size_t>(r)];
    // Param grads.
    for (int c = 0; c < d; ++c) {
      gain_.grad.At(0, c) += g[c] * x_hat[c];
      bias_.grad.At(0, c) += g[c];
    }
    // dx = (1/std) * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
    float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
    for (int c = 0; c < d; ++c) {
      dxhat[c] = g[c] * gain_.value.At(0, c);
      mean_dxhat += dxhat[c];
      mean_dxhat_xhat += dxhat[c] * x_hat[c];
    }
    mean_dxhat /= static_cast<float>(d);
    mean_dxhat_xhat /= static_cast<float>(d);
    float* out = grad_in.Row(r);
    for (int c = 0; c < d; ++c) {
      out[c] = inv_std * (dxhat[c] - mean_dxhat - x_hat[c] * mean_dxhat_xhat);
    }
  }
}

Matrix Sequential::Forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur);
  return cur;
}

Matrix Sequential::ForwardInference(const Matrix& x) const {
  Matrix cur = x;
  for (const auto& layer : layers_) cur = layer->ForwardInference(cur);
  return cur;
}

Matrix Sequential::Backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->Backward(cur);
  }
  return cur;
}

void Sequential::ForwardInto(const Matrix& x, PipelineScratch* scratch,
                             Matrix* y) {
  if (layers_.empty()) {
    *y = x;
    return;
  }
  const Matrix* cur = &x;
  Matrix* bufs[2] = {&scratch->a, &scratch->b};
  int which = 0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Matrix* out = (i + 1 == layers_.size()) ? y : bufs[which];
    layers_[i]->ForwardInto(*cur, out);
    cur = out;
    which ^= 1;
  }
}

void Sequential::BackwardInto(const Matrix& grad_out, PipelineScratch* scratch,
                              Matrix* grad_in) {
  if (layers_.empty()) {
    *grad_in = grad_out;
    return;
  }
  const Matrix* cur = &grad_out;
  Matrix* bufs[2] = {&scratch->a, &scratch->b};
  int which = 0;
  for (size_t i = layers_.size(); i-- > 0;) {
    Matrix* out = (i == 0) ? grad_in : bufs[which];
    layers_[i]->BackwardInto(*cur, out);
    cur = out;
    which ^= 1;
  }
}

void Sequential::ForwardInferenceInto(const Matrix& x, PipelineScratch* scratch,
                                      Matrix* y) const {
  if (layers_.empty()) {
    *y = x;
    return;
  }
  const Matrix* cur = &x;
  Matrix* bufs[2] = {&scratch->a, &scratch->b};
  int which = 0;
  size_t i = 0;
  while (i < layers_.size()) {
    const bool triple = i + 2 < layers_.size() &&
                        layers_[i]->kind() == LayerKind::kLinear &&
                        layers_[i + 1]->kind() == LayerKind::kLayerNorm &&
                        layers_[i + 2]->kind() == LayerKind::kLeakyReLU;
    const size_t last = triple ? i + 2 : i;
    Matrix* out = (last + 1 == layers_.size()) ? y : bufs[which];
    if (triple) {
      // Fused (Linear, LayerNorm, LeakyReLU): GEMM into the staging buffer
      // (never a ping-pong target, so it cannot alias `cur`), then one
      // per-row pass applies bias, normalization, and the leak in the exact
      // per-element op order of the three unfused layers — bit-identical,
      // with the two intermediate activations never written to memory.
      const auto* lin = static_cast<const Linear*>(layers_[i].get());
      const auto* ln = static_cast<const LayerNorm*>(layers_[i + 1].get());
      const auto* relu = static_cast<const LeakyReLU*>(layers_[i + 2].get());
      Matrix& t = scratch->fused;
      lin->GemmInto(*cur, &t);
      const int n = t.rows(), d = t.cols();
      out->Reshape(n, d);
      const float* lb = lin->bias_row();
      const float* gain = ln->gain_row();
      const float* lnb = ln->bias_row();
      const float alpha = relu->alpha();
      ParallelRows(n, /*min_parallel=*/128, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int ri = static_cast<int>(r);
          float* trow = t.Row(ri);
          for (int c = 0; c < d; ++c) trow[c] += lb[c];
          float* orow = out->Row(ri);
          LayerNormRow(trow, d, gain, lnb, LayerNorm::kEps, orow, nullptr,
                       nullptr);
          for (int c = 0; c < d; ++c) {
            if (orow[c] < 0.0f) orow[c] *= alpha;
          }
        }
      });
    } else {
      layers_[i]->ForwardInferenceInto(*cur, out);
    }
    cur = out;
    which ^= 1;
    i = last + 1;
  }
}

void Sequential::CollectParams(std::vector<Param*>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

void Sequential::RefreshInferenceWeights() {
  for (auto& layer : layers_) layer->RefreshInferenceWeights();
}

void Sequential::InvalidateInferenceWeights() {
  for (auto& layer : layers_) layer->InvalidateInferenceWeights();
}

void Sequential::ReleaseTrainingScratch() {
  for (auto& layer : layers_) layer->ReleaseTrainingScratch();
}

size_t Sequential::TrainingScratchBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer->TrainingScratchBytes();
  return total;
}

}  // namespace neo::nn
