#include "src/catalog/histogram.h"

#include <algorithm>
#include <cstdlib>

namespace neo::catalog {

Histogram::Histogram(const std::vector<int64_t>& codes, int num_buckets, int num_mcvs) {
  total_rows_ = codes.size();
  if (codes.empty()) return;

  std::vector<int64_t> sorted = codes;
  std::sort(sorted.begin(), sorted.end());
  min_code_ = sorted.front();
  max_code_ = sorted.back();

  // Exact value counts (run-length over the sorted data).
  std::vector<std::pair<int64_t, size_t>> value_counts;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    value_counts.emplace_back(sorted[i], j - i);
    i = j;
  }
  num_distinct_ = value_counts.size();

  // MCVs: the `num_mcvs` most frequent values, tracked exactly.
  std::vector<std::pair<int64_t, size_t>> by_freq = value_counts;
  const size_t mcv_count =
      std::min<size_t>(static_cast<size_t>(std::max(num_mcvs, 0)), by_freq.size());
  std::partial_sort(by_freq.begin(), by_freq.begin() + static_cast<long>(mcv_count),
                    by_freq.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second ||
                             (a.second == b.second && a.first < b.first);
                    });
  for (size_t i = 0; i < mcv_count; ++i) mcv_.emplace(by_freq[i].first, by_freq[i].second);

  // Equi-depth buckets over the remaining (non-MCV) values.
  std::vector<std::pair<int64_t, size_t>> rest;
  size_t rest_rows = 0;
  for (const auto& vc : value_counts) {
    if (mcv_.count(vc.first) == 0) {
      rest.push_back(vc);
      rest_rows += vc.second;
    }
  }
  if (rest.empty()) return;
  const size_t target_depth =
      std::max<size_t>(1, rest_rows / static_cast<size_t>(std::max(num_buckets, 1)));
  Bucket cur;
  cur.lo = rest.front().first;
  for (const auto& [code, count] : rest) {
    cur.hi = code;
    cur.count += count;
    cur.distinct += 1;
    if (cur.count >= target_depth) {
      buckets_.push_back(cur);
      cur = Bucket{};
      cur.lo = code + 1;
    }
  }
  if (cur.count > 0) buckets_.push_back(cur);
}

double Histogram::SelectivityEq(int64_t code) const {
  if (total_rows_ == 0) return 0.0;
  auto it = mcv_.find(code);
  if (it != mcv_.end()) {
    return static_cast<double>(it->second) / static_cast<double>(total_rows_);
  }
  for (const Bucket& b : buckets_) {
    if (code >= b.lo && code <= b.hi) {
      if (b.distinct == 0) return 0.0;
      // Uniformity within the bucket: count / distinct rows per value.
      return static_cast<double>(b.count) / static_cast<double>(b.distinct) /
             static_cast<double>(total_rows_);
    }
  }
  return 0.0;
}

double Histogram::SelectivityRange(int64_t lo, int64_t hi) const {
  if (total_rows_ == 0 || lo > hi) return 0.0;
  double rows = 0.0;
  for (const auto& [code, count] : mcv_) {
    if (code >= lo && code <= hi) rows += static_cast<double>(count);
  }
  for (const Bucket& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    const int64_t ov_lo = std::max(lo, b.lo);
    const int64_t ov_hi = std::min(hi, b.hi);
    const double width = static_cast<double>(b.hi - b.lo) + 1.0;
    const double overlap = static_cast<double>(ov_hi - ov_lo) + 1.0;
    rows += static_cast<double>(b.count) * (overlap / width);
  }
  return std::min(1.0, rows / static_cast<double>(total_rows_));
}

}  // namespace neo::catalog
