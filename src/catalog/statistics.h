// Database statistics: per-column histograms + per-table reservoir samples.
// Consumed by (a) the histogram-based expert cardinality estimator, (b) the
// "Histogram" query featurization, and (c) the sampling-based estimators that
// emulate commercial optimizers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/catalog/histogram.h"
#include "src/catalog/schema.h"
#include "src/storage/table.h"
#include "src/util/rng.h"

namespace neo::catalog {

class Statistics {
 public:
  /// Scans every table of `db` and builds all statistics.
  Statistics(const Schema& schema, const storage::Database& db,
             int histogram_buckets = 32, int histogram_mcvs = 16,
             size_t sample_size = 1000, uint64_t seed = 0x57a7ULL);

  const Histogram& histogram(int table_id, int column_idx) const;
  size_t table_rows(int table_id) const { return table_rows_[static_cast<size_t>(table_id)]; }
  size_t num_distinct(int table_id, int column_idx) const;

  /// Sampled row ids of a table (uniform without replacement, deterministic).
  const std::vector<uint32_t>& sample_rows(int table_id) const {
    return samples_[static_cast<size_t>(table_id)];
  }

 private:
  std::vector<size_t> table_rows_;
  std::vector<std::vector<Histogram>> histograms_;  ///< [table][column]
  std::vector<std::vector<uint32_t>> samples_;
};

}  // namespace neo::catalog
