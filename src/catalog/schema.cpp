#include "src/catalog/schema.h"

namespace neo::catalog {

int Schema::AddTable(
    const std::string& name,
    const std::vector<std::pair<std::string, storage::ColumnType>>& columns,
    const std::string& primary_key) {
  NEO_CHECK_MSG(table_ids_.count(name) == 0, name.c_str());
  TableInfo info;
  info.name = name;
  info.id = static_cast<int>(tables_.size());
  for (const auto& [col_name, type] : columns) {
    ColumnInfo ci;
    ci.name = col_name;
    ci.type = type;
    ci.table_id = info.id;
    ci.global_id = num_columns_;
    global_columns_.emplace_back(info.id, static_cast<int>(info.columns.size()));
    ++num_columns_;
    info.columns.push_back(ci);
  }
  if (!primary_key.empty()) {
    info.primary_key = info.ColumnIndex(primary_key);
    NEO_CHECK_MSG(info.primary_key >= 0, primary_key.c_str());
  }
  table_ids_.emplace(name, info.id);
  tables_.push_back(std::move(info));
  return tables_.back().id;
}

void Schema::MarkIndexed(const std::string& table, const std::string& column) {
  TableInfo& t = tables_[static_cast<size_t>(TableId(table))];
  const int ci = t.ColumnIndex(column);
  NEO_CHECK_MSG(ci >= 0, column.c_str());
  t.columns[static_cast<size_t>(ci)].indexed = true;
}

void Schema::AddForeignKey(const std::string& from_table, const std::string& from_column,
                           const std::string& to_table, const std::string& to_column) {
  ForeignKey fk;
  fk.from_table = TableId(from_table);
  fk.to_table = TableId(to_table);
  fk.from_column = tables_[static_cast<size_t>(fk.from_table)].ColumnIndex(from_column);
  fk.to_column = tables_[static_cast<size_t>(fk.to_table)].ColumnIndex(to_column);
  NEO_CHECK(fk.from_column >= 0 && fk.to_column >= 0);
  foreign_keys_.push_back(fk);
}

int Schema::TableId(const std::string& name) const {
  auto it = table_ids_.find(name);
  NEO_CHECK_MSG(it != table_ids_.end(), name.c_str());
  return it->second;
}

const TableInfo& Schema::TableByName(const std::string& name) const {
  return tables_[static_cast<size_t>(TableId(name))];
}

int Schema::GlobalColumnId(const std::string& table, const std::string& column) const {
  auto it = table_ids_.find(table);
  if (it == table_ids_.end()) return -1;
  const TableInfo& t = tables_[static_cast<size_t>(it->second)];
  const int ci = t.ColumnIndex(column);
  if (ci < 0) return -1;
  return t.columns[static_cast<size_t>(ci)].global_id;
}

const ColumnInfo& Schema::ColumnByGlobalId(int global_id) const {
  const auto& [tid, cid] = global_columns_[static_cast<size_t>(global_id)];
  return tables_[static_cast<size_t>(tid)].columns[static_cast<size_t>(cid)];
}

std::string Schema::QualifiedName(int global_id) const {
  const auto& [tid, cid] = global_columns_[static_cast<size_t>(global_id)];
  return tables_[static_cast<size_t>(tid)].name + "." +
         tables_[static_cast<size_t>(tid)].columns[static_cast<size_t>(cid)].name;
}

std::vector<ForeignKey> Schema::ForeignKeysOf(int id) const {
  std::vector<ForeignKey> out;
  for (const auto& fk : foreign_keys_) {
    if (fk.from_table == id || fk.to_table == id) out.push_back(fk);
  }
  return out;
}

bool Schema::FindJoinEdge(int a, int b, ForeignKey* fk) const {
  for (const auto& edge : foreign_keys_) {
    if ((edge.from_table == a && edge.to_table == b) ||
        (edge.from_table == b && edge.to_table == a)) {
      if (fk != nullptr) *fk = edge;
      return true;
    }
  }
  return false;
}

void BuildDeclaredIndexes(const Schema& schema, storage::Database* db) {
  for (const TableInfo& t : schema.tables()) {
    storage::Table& table = db->table(t.name);
    for (size_t i = 0; i < t.columns.size(); ++i) {
      const bool is_pk = static_cast<int>(i) == t.primary_key;
      if (t.columns[i].indexed || is_pk) {
        table.BuildIndex(t.columns[i].name);
      }
    }
  }
}

}  // namespace neo::catalog
