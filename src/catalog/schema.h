// Schema metadata: the logical description of a database that queries,
// featurization, and optimizers work against. Data lives in storage::Database;
// this class records table/column identities, key relationships, and which
// columns carry secondary indexes.
//
// Neo's featurization (paper §3.2) needs a stable global numbering of tables
// (for the join-graph adjacency matrix) and of columns (for the predicate
// vector); Schema provides both.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/table.h"
#include "src/util/status.h"

namespace neo::catalog {

struct ColumnInfo {
  std::string name;
  storage::ColumnType type = storage::ColumnType::kInt;
  bool indexed = false;
  int table_id = -1;     ///< Owning table.
  int global_id = -1;    ///< Position in the schema-wide column numbering.
};

struct TableInfo {
  std::string name;
  int id = -1;
  std::vector<ColumnInfo> columns;
  int primary_key = -1;  ///< Column position within `columns`, or -1.

  int ColumnIndex(const std::string& col) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Foreign-key relationship `from_table.from_column -> to_table.to_column`.
/// These edges define which equi-joins the workload generators emit and which
/// denormalization joins the row-embedding trainer performs.
struct ForeignKey {
  int from_table = -1;
  int from_column = -1;  ///< Position within from_table's columns.
  int to_table = -1;
  int to_column = -1;
};

class Schema {
 public:
  /// Registers a table; returns its id. Column global ids are assigned in
  /// registration order.
  int AddTable(const std::string& name,
               const std::vector<std::pair<std::string, storage::ColumnType>>& columns,
               const std::string& primary_key = "");

  /// Marks `table.column` as indexed (mirrors storage-side index builds).
  void MarkIndexed(const std::string& table, const std::string& column);

  /// Declares a foreign key edge.
  void AddForeignKey(const std::string& from_table, const std::string& from_column,
                     const std::string& to_table, const std::string& to_column);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  int num_columns() const { return num_columns_; }

  const TableInfo& table(int id) const { return tables_[static_cast<size_t>(id)]; }
  const std::vector<TableInfo>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  int TableId(const std::string& name) const;
  const TableInfo& TableByName(const std::string& name) const;

  /// Global column id for table.column; -1 if unknown.
  int GlobalColumnId(const std::string& table, const std::string& column) const;

  /// Reverse lookup of a global column id.
  const ColumnInfo& ColumnByGlobalId(int global_id) const;

  /// "table.column" for a global column id (for messages and SQL printing).
  std::string QualifiedName(int global_id) const;

  /// Foreign keys touching table `id` (either side).
  std::vector<ForeignKey> ForeignKeysOf(int id) const;

  /// True if some FK connects `a` and `b` (either direction); fills `fk`.
  bool FindJoinEdge(int a, int b, ForeignKey* fk) const;

 private:
  std::vector<TableInfo> tables_;
  std::unordered_map<std::string, int> table_ids_;
  std::vector<ForeignKey> foreign_keys_;
  std::vector<std::pair<int, int>> global_columns_;  ///< global id -> (table, col)
  int num_columns_ = 0;
};

/// Builds storage-side indexes for every column marked indexed in the schema,
/// plus primary keys.
void BuildDeclaredIndexes(const Schema& schema, storage::Database* db);

}  // namespace neo::catalog
