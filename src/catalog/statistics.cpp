#include "src/catalog/statistics.h"

namespace neo::catalog {

Statistics::Statistics(const Schema& schema, const storage::Database& db,
                       int histogram_buckets, int histogram_mcvs, size_t sample_size,
                       uint64_t seed) {
  util::Rng rng(seed);
  table_rows_.resize(static_cast<size_t>(schema.num_tables()));
  histograms_.resize(static_cast<size_t>(schema.num_tables()));
  samples_.resize(static_cast<size_t>(schema.num_tables()));

  for (const TableInfo& t : schema.tables()) {
    const storage::Table& table = db.table(t.name);
    const size_t tid = static_cast<size_t>(t.id);
    table_rows_[tid] = table.num_rows();

    histograms_[tid].reserve(t.columns.size());
    for (size_t c = 0; c < t.columns.size(); ++c) {
      histograms_[tid].emplace_back(table.column(c).codes(), histogram_buckets,
                                    histogram_mcvs);
    }

    // Reservoir sample of row ids.
    util::Rng table_rng = rng.Fork(static_cast<uint64_t>(t.id));
    std::vector<uint32_t>& sample = samples_[tid];
    const size_t n = table.num_rows();
    for (uint32_t row = 0; row < n; ++row) {
      if (sample.size() < sample_size) {
        sample.push_back(row);
      } else {
        const size_t j = table_rng.NextBounded(row + 1);
        if (j < sample_size) sample[j] = row;
      }
    }
  }
}

const Histogram& Statistics::histogram(int table_id, int column_idx) const {
  return histograms_[static_cast<size_t>(table_id)][static_cast<size_t>(column_idx)];
}

size_t Statistics::num_distinct(int table_id, int column_idx) const {
  return histogram(table_id, column_idx).num_distinct();
}

}  // namespace neo::catalog
