// Equi-depth histogram with a most-common-values (MCV) list, mirroring the
// statistics PostgreSQL keeps (paper §3.2 "Histogram" featurization and the
// expert optimizer's cardinality estimation both consume these).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace neo::catalog {

class Histogram {
 public:
  /// Builds from raw column codes. `num_buckets` bounds the equi-depth bucket
  /// count; `num_mcvs` values are tracked exactly.
  Histogram(const std::vector<int64_t>& codes, int num_buckets = 32, int num_mcvs = 16);

  Histogram() = default;

  /// Estimated selectivity of `column = code` in [0, 1].
  double SelectivityEq(int64_t code) const;

  /// Estimated selectivity of `lo <= column <= hi` (use INT64_MIN/MAX for
  /// open ends).
  double SelectivityRange(int64_t lo, int64_t hi) const;

  size_t total_rows() const { return total_rows_; }
  size_t num_distinct() const { return num_distinct_; }
  int64_t min_code() const { return min_code_; }
  int64_t max_code() const { return max_code_; }

 private:
  struct Bucket {
    int64_t lo = 0;       ///< Inclusive lower bound.
    int64_t hi = 0;       ///< Inclusive upper bound.
    size_t count = 0;     ///< Rows in bucket (excluding MCV rows).
    size_t distinct = 0;  ///< Distinct codes in bucket (excluding MCVs).
  };

  size_t total_rows_ = 0;
  size_t num_distinct_ = 0;
  int64_t min_code_ = 0;
  int64_t max_code_ = 0;
  std::vector<Bucket> buckets_;
  std::unordered_map<int64_t, size_t> mcv_;  ///< code -> exact count
};

}  // namespace neo::catalog
