// Row vector embeddings (paper §5): word2vec trained over database rows.
//
// Tokens are (column, value) pairs. Two sentence-building variants mirror
// the paper:
//   - kNoJoins: one sentence per row per table, from the table's own
//     attribute columns (captures intra-table correlation);
//   - kJoins ("partially denormalized"): for every table with outgoing
//     foreign keys, each row's sentence additionally contains the referenced
//     rows' attribute tokens plus a *bridge token* for the referenced
//     primary-key value. Hub tables (e.g. title) referenced by several link
//     tables then connect values across tables — exactly how the paper's
//     denormalization lets word2vec see that 'love' keywords and 'romance'
//     genres co-occur through shared titles (§5.2, Table 2).
//
// Foreign-key and primary-key columns are excluded from attribute tokens
// (row-unique ids carry no distributional signal except as bridges).
#pragma once

#include <memory>
#include <unordered_map>

#include "src/catalog/schema.h"
#include "src/embedding/word2vec.h"
#include "src/storage/table.h"

namespace neo::embedding {

enum class RowEmbeddingMode { kNoJoins, kJoins };

struct RowEmbeddingOptions {
  RowEmbeddingMode mode = RowEmbeddingMode::kJoins;
  Word2VecOptions w2v;

  RowEmbeddingOptions() {
    // Database-row corpora need more passes than the word2vec defaults and
    // benefit from subsampling the ubiquitous hub-attribute tokens.
    w2v.epochs = 8;
    w2v.subsample_threshold = 1e-2;
  }
};

class RowEmbedding {
 public:
  /// Builds sentences from `db` and trains the embedding.
  RowEmbedding(const catalog::Schema& schema, const storage::Database& db,
               RowEmbeddingOptions options = {});

  int dim() const { return w2v_.dim(); }
  RowEmbeddingMode mode() const { return options_.mode; }

  /// Token id for (global column id, value code); -1 if never seen.
  int TokenFor(int global_col_id, int64_t code) const;

  /// Embedding of a value; zero vector written if unseen.
  void VectorFor(int global_col_id, int64_t code, float* out) const;

  /// Mean embedding over several codes of one column (IN/LIKE predicates:
  /// "we take the mean of all the matched word vectors", §5.1).
  void MeanVectorFor(int global_col_id, const std::vector<int64_t>& codes,
                     float* out) const;

  /// Corpus frequency of a value token (feature 4 of the §5.1 construction).
  int64_t CountFor(int global_col_id, int64_t code) const;

  /// Cosine similarity between two value tokens (Table 2).
  double Cosine(int col_a, int64_t code_a, int col_b, int64_t code_b) const;

  size_t vocab_size() const { return next_token_; }
  size_t num_sentences() const { return num_sentences_; }

 private:
  int InternToken(int global_col_id, int64_t code);

  RowEmbeddingOptions options_;
  Word2Vec w2v_;
  std::unordered_map<uint64_t, int> token_ids_;
  size_t next_token_ = 0;
  size_t num_sentences_ = 0;
};

}  // namespace neo::embedding
