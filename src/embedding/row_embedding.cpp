#include "src/embedding/row_embedding.h"

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::embedding {

namespace {

/// True for columns excluded from attribute tokens: primary keys and
/// foreign-key columns (ids only matter as join bridges).
std::vector<std::vector<bool>> KeyColumnMask(const catalog::Schema& schema) {
  std::vector<std::vector<bool>> is_key(static_cast<size_t>(schema.num_tables()));
  for (const auto& t : schema.tables()) {
    is_key[static_cast<size_t>(t.id)].assign(t.columns.size(), false);
    if (t.primary_key >= 0) {
      is_key[static_cast<size_t>(t.id)][static_cast<size_t>(t.primary_key)] = true;
    }
  }
  for (const auto& fk : schema.foreign_keys()) {
    is_key[static_cast<size_t>(fk.from_table)][static_cast<size_t>(fk.from_column)] =
        true;
    is_key[static_cast<size_t>(fk.to_table)][static_cast<size_t>(fk.to_column)] = true;
  }
  return is_key;
}

}  // namespace

int RowEmbedding::InternToken(int global_col_id, int64_t code) {
  const uint64_t key = util::HashCombine(static_cast<uint64_t>(global_col_id),
                                         static_cast<uint64_t>(code) + 0x7fULL);
  auto [it, inserted] = token_ids_.emplace(key, static_cast<int>(next_token_));
  if (inserted) ++next_token_;
  return it->second;
}

RowEmbedding::RowEmbedding(const catalog::Schema& schema, const storage::Database& db,
                           RowEmbeddingOptions options)
    : options_(options), w2v_(options.w2v) {
  const auto is_key = KeyColumnMask(schema);
  std::vector<std::vector<int>> sentences;

  // Attribute tokens of one row of one table.
  auto row_tokens = [&](const catalog::TableInfo& t, size_t row,
                        std::vector<int>* out) {
    const storage::Table& table = db.table(t.name);
    for (size_t c = 0; c < t.columns.size(); ++c) {
      if (is_key[static_cast<size_t>(t.id)][c]) continue;
      out->push_back(InternToken(t.columns[c].global_id,
                                 table.column(c).CodeAt(row)));
    }
  };

  if (options_.mode == RowEmbeddingMode::kNoJoins) {
    for (const auto& t : schema.tables()) {
      const storage::Table& table = db.table(t.name);
      for (size_t row = 0; row < table.num_rows(); ++row) {
        std::vector<int> sentence;
        row_tokens(t, row, &sentence);
        if (sentence.size() >= 2) sentences.push_back(std::move(sentence));
      }
    }
  } else {
    // Partially denormalized (paper §5.1: "we join large fact tables with
    // smaller tables which share a foreign key").

    // Finds the row of `target` whose key column equals key_code.
    auto lookup_row = [&](const catalog::TableInfo& target, int key_col,
                          int64_t key_code) -> int64_t {
      const storage::Table& target_table = db.table(target.name);
      // Fast path: generated data keys row position by PK value.
      if (key_code >= 0 && static_cast<size_t>(key_code) < target_table.num_rows() &&
          target_table.column(static_cast<size_t>(key_col))
                  .CodeAt(static_cast<size_t>(key_code)) == key_code) {
        return key_code;
      }
      if (const storage::Index* idx = target_table.GetIndex(
              target.columns[static_cast<size_t>(key_col)].name)) {
        const auto rows = idx->LookupEqual(key_code);
        if (!rows.empty()) return rows[0];
      }
      return -1;
    };

    // (1) One sentence per row of every table with outgoing FKs: own
    // attributes + referenced rows' attributes + bridge tokens.
    for (const auto& t : schema.tables()) {
      std::vector<catalog::ForeignKey> outgoing;
      for (const auto& fk : schema.foreign_keys()) {
        if (fk.from_table == t.id) outgoing.push_back(fk);
      }
      if (outgoing.empty()) continue;
      const storage::Table& table = db.table(t.name);
      for (size_t row = 0; row < table.num_rows(); ++row) {
        std::vector<int> sentence;
        row_tokens(t, row, &sentence);
        for (const auto& fk : outgoing) {
          const catalog::TableInfo& target = schema.table(fk.to_table);
          const int64_t key_code =
              table.column(static_cast<size_t>(fk.from_column)).CodeAt(row);
          // Bridge token: the referenced primary-key value itself.
          sentence.push_back(InternToken(
              target.columns[static_cast<size_t>(fk.to_column)].global_id, key_code));
          const int64_t target_row = lookup_row(target, fk.to_column, key_code);
          if (target_row >= 0) {
            row_tokens(target, static_cast<size_t>(target_row), &sentence);
          }
        }
        if (sentence.size() >= 2) sentences.push_back(std::move(sentence));
      }
    }

    // (2) Hub documents: for every table referenced by >= 2 distinct link
    // tables (e.g. title), one sentence per row combining its attributes
    // with a few referencing rows from each link table, each denormalized
    // through its *other* FK (title <- movie_keyword -> keyword). This is
    // the title|movie_keyword|keyword + title|movie_info|info_type
    // denormalization of §5.2, and is what lets word2vec see that 'love'
    // keywords and 'romance' genres describe the same movies.
    constexpr size_t kMaxRefsPerLink = 4;
    for (const auto& hub : schema.tables()) {
      std::vector<catalog::ForeignKey> incoming;
      for (const auto& fk : schema.foreign_keys()) {
        if (fk.to_table == hub.id) incoming.push_back(fk);
      }
      std::unordered_map<int, int> distinct_sources;
      for (const auto& fk : incoming) distinct_sources[fk.from_table]++;
      if (distinct_sources.size() < 2) continue;

      const storage::Table& hub_table = db.table(hub.name);
      for (size_t row = 0; row < hub_table.num_rows(); ++row) {
        std::vector<int> sentence;
        row_tokens(hub, row, &sentence);
        const int64_t hub_key =
            hub.primary_key >= 0
                ? hub_table.column(static_cast<size_t>(hub.primary_key)).CodeAt(row)
                : static_cast<int64_t>(row);
        for (const auto& fk : incoming) {
          const catalog::TableInfo& link = schema.table(fk.from_table);
          const storage::Table& link_table = db.table(link.name);
          const storage::Index* idx = link_table.GetIndex(
              link.columns[static_cast<size_t>(fk.from_column)].name);
          if (idx == nullptr) continue;
          const auto link_rows = idx->LookupEqual(hub_key);
          const size_t limit = std::min(kMaxRefsPerLink, link_rows.size());
          for (size_t i = 0; i < limit; ++i) {
            const size_t link_row = link_rows[i];
            row_tokens(link, link_row, &sentence);
            // Denormalize through the link's other FKs.
            for (const auto& other_fk : schema.foreign_keys()) {
              if (other_fk.from_table != link.id || other_fk.to_table == hub.id) {
                continue;
              }
              const catalog::TableInfo& dim = schema.table(other_fk.to_table);
              const int64_t dim_key =
                  link_table.column(static_cast<size_t>(other_fk.from_column))
                      .CodeAt(link_row);
              const int64_t dim_row = lookup_row(dim, other_fk.to_column, dim_key);
              if (dim_row >= 0) {
                row_tokens(dim, static_cast<size_t>(dim_row), &sentence);
              }
            }
          }
        }
        if (sentence.size() >= 2) sentences.push_back(std::move(sentence));
      }
    }
  }

  num_sentences_ = sentences.size();
  NEO_CHECK_MSG(next_token_ > 0, "row embedding: empty vocabulary");
  w2v_.Train(sentences, static_cast<int>(next_token_));
}

int RowEmbedding::TokenFor(int global_col_id, int64_t code) const {
  const uint64_t key = util::HashCombine(static_cast<uint64_t>(global_col_id),
                                         static_cast<uint64_t>(code) + 0x7fULL);
  auto it = token_ids_.find(key);
  return it == token_ids_.end() ? -1 : it->second;
}

void RowEmbedding::VectorFor(int global_col_id, int64_t code, float* out) const {
  const int token = TokenFor(global_col_id, code);
  if (token < 0) {
    for (int d = 0; d < dim(); ++d) out[d] = 0.0f;
    return;
  }
  const float* v = w2v_.Vector(token);
  for (int d = 0; d < dim(); ++d) out[d] = v[d];
}

void RowEmbedding::MeanVectorFor(int global_col_id, const std::vector<int64_t>& codes,
                                 float* out) const {
  std::vector<int> tokens;
  for (int64_t code : codes) {
    const int t = TokenFor(global_col_id, code);
    if (t >= 0) tokens.push_back(t);
  }
  w2v_.MeanVector(tokens, out);
}

int64_t RowEmbedding::CountFor(int global_col_id, int64_t code) const {
  const int token = TokenFor(global_col_id, code);
  return token < 0 ? 0 : w2v_.Count(token);
}

double RowEmbedding::Cosine(int col_a, int64_t code_a, int col_b,
                            int64_t code_b) const {
  const int ta = TokenFor(col_a, code_a);
  const int tb = TokenFor(col_b, code_b);
  if (ta < 0 || tb < 0) return 0.0;
  return w2v_.Cosine(ta, tb);
}

}  // namespace neo::embedding
