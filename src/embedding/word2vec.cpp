#include "src/embedding/word2vec.h"

#include <cmath>

#include "src/util/status.h"

namespace neo::embedding {

namespace {

inline float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

void Word2Vec::Train(const std::vector<std::vector<int>>& sentences, int vocab_size) {
  NEO_CHECK(vocab_size > 0);
  vocab_size_ = vocab_size;
  const int dim = options_.dim;
  util::Rng rng(options_.seed);

  counts_.assign(static_cast<size_t>(vocab_size), 0);
  size_t total_tokens = 0;
  for (const auto& s : sentences) {
    for (int t : s) {
      NEO_CHECK(t >= 0 && t < vocab_size);
      ++counts_[static_cast<size_t>(t)];
      ++total_tokens;
    }
  }

  // Initialize: input vectors uniform small, output vectors zero (standard).
  in_vecs_.assign(static_cast<size_t>(vocab_size) * dim, 0.0f);
  out_vecs_.assign(static_cast<size_t>(vocab_size) * dim, 0.0f);
  for (auto& v : in_vecs_) {
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5)) / static_cast<float>(dim);
  }

  // Negative-sampling table: unigram^power.
  std::vector<double> weights(static_cast<size_t>(vocab_size));
  for (int t = 0; t < vocab_size; ++t) {
    weights[static_cast<size_t>(t)] =
        std::pow(static_cast<double>(counts_[static_cast<size_t>(t)]),
                 options_.unigram_power);
  }
  // Alias-free sampling via cumulative table.
  std::vector<double> cdf(weights.size());
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cdf[i] = acc;
  }
  NEO_CHECK(acc > 0);
  auto sample_negative = [&]() {
    const double r = rng.NextDouble() * acc;
    size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo);
  };

  // Frequent-token keep probabilities (subsampling).
  std::vector<float> keep_prob;
  if (options_.subsample_threshold > 0.0 && total_tokens > 0) {
    keep_prob.resize(static_cast<size_t>(vocab_size), 1.0f);
    for (int t = 0; t < vocab_size; ++t) {
      const double f = static_cast<double>(counts_[static_cast<size_t>(t)]) /
                       static_cast<double>(total_tokens);
      if (f > options_.subsample_threshold) {
        const double ratio = options_.subsample_threshold / f;
        keep_prob[static_cast<size_t>(t)] =
            static_cast<float>(std::sqrt(ratio) + ratio);
      }
    }
  }

  std::vector<float> grad_center(static_cast<size_t>(dim));
  const size_t total_steps =
      static_cast<size_t>(options_.epochs) * std::max<size_t>(1, sentences.size());
  size_t step = 0;

  std::vector<size_t> order(sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<int> kept;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t si : order) {
      const auto& full_sentence = sentences[si];
      const float progress =
          static_cast<float>(step++) / static_cast<float>(total_steps);
      const float lr = options_.lr + (options_.min_lr - options_.lr) * progress;

      // Apply subsampling per epoch pass.
      const std::vector<int>* sentence_ptr = &full_sentence;
      if (!keep_prob.empty()) {
        kept.clear();
        for (int t : full_sentence) {
          if (keep_prob[static_cast<size_t>(t)] >= 1.0f ||
              rng.NextDouble() < keep_prob[static_cast<size_t>(t)]) {
            kept.push_back(t);
          }
        }
        sentence_ptr = &kept;
      }
      const auto& sentence = *sentence_ptr;
      if (sentence.size() < 2) continue;

      for (size_t ci = 0; ci < sentence.size(); ++ci) {
        const int center = sentence[ci];
        float* v_in = &in_vecs_[static_cast<size_t>(center) * dim];
        const int contexts =
            std::min<int>(options_.max_context, static_cast<int>(sentence.size()) - 1);
        for (int k = 0; k < contexts; ++k) {
          // Unordered context: any other sentence token.
          size_t oi = rng.NextBounded(sentence.size() - 1);
          if (oi >= ci) ++oi;
          const int context = sentence[oi];

          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // Positive pair + negatives.
          for (int neg = 0; neg <= options_.negatives; ++neg) {
            int target;
            float label;
            if (neg == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = sample_negative();
              if (target == context) continue;
              label = 0.0f;
            }
            float* v_out = &out_vecs_[static_cast<size_t>(target) * dim];
            float dot = 0.0f;
            for (int d = 0; d < dim; ++d) dot += v_in[d] * v_out[d];
            const float g = (Sigmoid(dot) - label) * lr;
            for (int d = 0; d < dim; ++d) {
              grad_center[static_cast<size_t>(d)] += g * v_out[d];
              v_out[d] -= g * v_in[d];
            }
          }
          for (int d = 0; d < dim; ++d) v_in[d] -= grad_center[static_cast<size_t>(d)];
        }
      }
    }
  }
}

const float* Word2Vec::Vector(int token) const {
  NEO_CHECK(token >= 0 && token < vocab_size_);
  return &in_vecs_[static_cast<size_t>(token) * options_.dim];
}

int64_t Word2Vec::Count(int token) const {
  if (token < 0 || token >= vocab_size_) return 0;
  return counts_[static_cast<size_t>(token)];
}

double Word2Vec::Cosine(int a, int b) const {
  const float* va = Vector(a);
  const float* vb = Vector(b);
  double dot = 0, na = 0, nb = 0;
  for (int d = 0; d < options_.dim; ++d) {
    dot += static_cast<double>(va[d]) * vb[d];
    na += static_cast<double>(va[d]) * va[d];
    nb += static_cast<double>(vb[d]) * vb[d];
  }
  if (na <= 0 || nb <= 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void Word2Vec::MeanVector(const std::vector<int>& tokens, float* out) const {
  for (int d = 0; d < options_.dim; ++d) out[d] = 0.0f;
  if (tokens.empty()) return;
  for (int t : tokens) {
    const float* v = Vector(t);
    for (int d = 0; d < options_.dim; ++d) out[d] += v[d];
  }
  for (int d = 0; d < options_.dim; ++d) out[d] /= static_cast<float>(tokens.size());
}

}  // namespace neo::embedding
