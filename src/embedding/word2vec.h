// Skip-gram word2vec with negative sampling (Mikolov et al. [36]), from
// scratch. Used by the R-Vector featurization (paper §5): sentences are
// database rows, "words" are (column, value) tokens. Sentences are treated
// as unordered bags (database rows have no token order), so context words
// are sampled from the whole sentence.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/rng.h"

namespace neo::embedding {

struct Word2VecOptions {
  int dim = 16;
  int epochs = 4;
  int negatives = 5;           ///< Negative samples per positive pair.
  int max_context = 4;         ///< Context tokens sampled per center token.
  float lr = 0.05f;
  float min_lr = 0.001f;
  double unigram_power = 0.75; ///< Negative-sampling distribution exponent.
  /// Frequent-token subsampling threshold (Mikolov et al.): tokens with
  /// corpus frequency f are kept with probability sqrt(t/f) + t/f. Prevents
  /// ubiquitous tokens (hub attributes) from collapsing the space. 0 = off.
  double subsample_threshold = 0.0;
  uint64_t seed = 0x33cc77ULL;
};

class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {}) : options_(options) {}

  /// Trains on token-id sentences. `vocab_size` must exceed every token id.
  void Train(const std::vector<std::vector<int>>& sentences, int vocab_size);

  int dim() const { return options_.dim; }
  int vocab_size() const { return vocab_size_; }

  /// Input-embedding vector of a token (the conventional output of w2v).
  const float* Vector(int token) const;

  /// Number of occurrences of `token` in the training corpus.
  int64_t Count(int token) const;

  /// Cosine similarity between two token embeddings.
  double Cosine(int a, int b) const;

  /// Element-wise mean of several token vectors into `out` (size dim).
  void MeanVector(const std::vector<int>& tokens, float* out) const;

 private:
  Word2VecOptions options_;
  int vocab_size_ = 0;
  std::vector<float> in_vecs_;   ///< vocab x dim
  std::vector<float> out_vecs_;  ///< vocab x dim
  std::vector<int64_t> counts_;
};

}  // namespace neo::embedding
