#include "src/storage/column.h"

#include "src/util/string_util.h"

namespace neo::storage {

std::vector<int64_t> Column::CodesContaining(const std::string& needle) const {
  std::vector<int64_t> out;
  for (size_t code = 0; code < dict_.size(); ++code) {
    if (util::Contains(dict_[code], needle)) out.push_back(static_cast<int64_t>(code));
  }
  return out;
}

}  // namespace neo::storage
