// A table is a set of equal-length columns plus optional secondary indexes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/column.h"
#include "src/util/status.h"

namespace neo::storage {

/// Secondary index: rows sorted by column code, supporting equality lookups
/// (binary search) and ordered iteration (for merge-join sortedness).
class Index {
 public:
  Index(std::string column_name, const Column& column);

  const std::string& column_name() const { return column_name_; }

  /// Number of rows matching `code`.
  size_t CountEqual(int64_t code) const;

  /// Row ids matching `code`, in index order.
  std::vector<uint32_t> LookupEqual(int64_t code) const;

  /// Number of rows with code in [lo, hi] inclusive.
  size_t CountRange(int64_t lo, int64_t hi) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int64_t code;
    uint32_t row;
  };
  std::string column_name_;
  std::vector<Entry> entries_;  // sorted by (code, row)
};

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column; all columns of a table must end up with the same length.
  Column& AddColumn(const std::string& col_name, ColumnType type);

  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }

  /// Column index by name; -1 if absent.
  int ColumnIndex(const std::string& col_name) const;

  const Column& ColumnByName(const std::string& col_name) const;

  /// Recomputes the row count from column 0 and checks all columns agree.
  void SealRows();

  /// Builds (or rebuilds) a secondary index on `col_name`.
  void BuildIndex(const std::string& col_name);

  /// Returns the index on `col_name`, or nullptr.
  const Index* GetIndex(const std::string& col_name) const;

  bool HasIndex(const std::string& col_name) const { return GetIndex(col_name) != nullptr; }

  std::vector<std::string> indexed_columns() const;

 private:
  std::string name_;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, size_t> column_index_;
  std::unordered_map<std::string, std::unique_ptr<Index>> indexes_;
};

/// Named collection of tables.
class Database {
 public:
  Table& AddTable(const std::string& name);
  const Table& table(const std::string& name) const;
  Table& table(const std::string& name);
  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  std::vector<std::string> table_names() const;
  size_t total_rows() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> insertion_order_;
};

}  // namespace neo::storage
