// Dictionary-encoded, in-memory column storage.
//
// Every value is stored as an int64 "code". Integer columns store the value
// itself; string columns store an index into a per-column dictionary. This
// uniform representation keeps joins, predicate evaluation, histograms, and
// word2vec sentence building simple and fast.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace neo::storage {

enum class ColumnType { kInt, kString };

class Column {
 public:
  Column(std::string name, ColumnType type) : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return data_.size(); }

  /// Appends an integer value (kInt columns only).
  void AppendInt(int64_t v) {
    NEO_CHECK(type_ == ColumnType::kInt);
    data_.push_back(v);
  }

  /// Appends a string value, interning it in the dictionary (kString only).
  void AppendString(const std::string& s) {
    NEO_CHECK(type_ == ColumnType::kString);
    data_.push_back(InternString(s));
  }

  /// Returns the dictionary code for `s`, adding it if absent.
  int64_t InternString(const std::string& s) {
    auto it = dict_index_.find(s);
    if (it != dict_index_.end()) return it->second;
    const int64_t code = static_cast<int64_t>(dict_.size());
    dict_.push_back(s);
    dict_index_.emplace(dict_.back(), code);
    return code;
  }

  /// Returns the code for `s`, or -1 if the value does not occur.
  int64_t LookupString(const std::string& s) const {
    auto it = dict_index_.find(s);
    return it == dict_index_.end() ? -1 : it->second;
  }

  /// Raw code at `row` (int value or dictionary code).
  int64_t CodeAt(size_t row) const { return data_[row]; }

  /// String at `row` (kString columns only).
  const std::string& StringAt(size_t row) const {
    NEO_CHECK(type_ == ColumnType::kString);
    return dict_[static_cast<size_t>(data_[row])];
  }

  const std::vector<int64_t>& codes() const { return data_; }
  const std::vector<std::string>& dictionary() const { return dict_; }
  size_t dictionary_size() const { return dict_.size(); }

  /// Dictionary codes whose string contains `needle` (for LIKE-style
  /// predicates). O(dictionary size).
  std::vector<int64_t> CodesContaining(const std::string& needle) const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<int64_t> data_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int64_t> dict_index_;
};

}  // namespace neo::storage
