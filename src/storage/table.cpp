#include "src/storage/table.h"

#include <algorithm>

namespace neo::storage {

Index::Index(std::string column_name, const Column& column)
    : column_name_(std::move(column_name)) {
  entries_.reserve(column.size());
  for (size_t row = 0; row < column.size(); ++row) {
    entries_.push_back(Entry{column.CodeAt(row), static_cast<uint32_t>(row)});
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.code < b.code || (a.code == b.code && a.row < b.row);
  });
}

size_t Index::CountEqual(int64_t code) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), code,
                             [](const Entry& e, int64_t c) { return e.code < c; });
  auto hi = std::upper_bound(entries_.begin(), entries_.end(), code,
                             [](int64_t c, const Entry& e) { return c < e.code; });
  return static_cast<size_t>(hi - lo);
}

std::vector<uint32_t> Index::LookupEqual(int64_t code) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), code,
                             [](const Entry& e, int64_t c) { return e.code < c; });
  std::vector<uint32_t> rows;
  for (auto it = lo; it != entries_.end() && it->code == code; ++it) {
    rows.push_back(it->row);
  }
  return rows;
}

size_t Index::CountRange(int64_t lo_code, int64_t hi_code) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), lo_code,
                             [](const Entry& e, int64_t c) { return e.code < c; });
  auto hi = std::upper_bound(entries_.begin(), entries_.end(), hi_code,
                             [](int64_t c, const Entry& e) { return c < e.code; });
  return static_cast<size_t>(hi - lo);
}

Column& Table::AddColumn(const std::string& col_name, ColumnType type) {
  NEO_CHECK_MSG(column_index_.count(col_name) == 0, col_name.c_str());
  column_index_.emplace(col_name, columns_.size());
  columns_.push_back(std::make_unique<Column>(col_name, type));
  return *columns_.back();
}

int Table::ColumnIndex(const std::string& col_name) const {
  auto it = column_index_.find(col_name);
  return it == column_index_.end() ? -1 : static_cast<int>(it->second);
}

const Column& Table::ColumnByName(const std::string& col_name) const {
  const int idx = ColumnIndex(col_name);
  NEO_CHECK_MSG(idx >= 0, (name_ + "." + col_name).c_str());
  return *columns_[static_cast<size_t>(idx)];
}

void Table::SealRows() {
  NEO_CHECK(!columns_.empty());
  num_rows_ = columns_[0]->size();
  for (const auto& col : columns_) {
    NEO_CHECK_MSG(col->size() == num_rows_, (name_ + "." + col->name()).c_str());
  }
}

void Table::BuildIndex(const std::string& col_name) {
  const Column& col = ColumnByName(col_name);
  indexes_[col_name] = std::make_unique<Index>(col_name, col);
}

const Index* Table::GetIndex(const std::string& col_name) const {
  auto it = indexes_.find(col_name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [name, idx] : indexes_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

Table& Database::AddTable(const std::string& name) {
  NEO_CHECK_MSG(tables_.count(name) == 0, name.c_str());
  auto [it, inserted] = tables_.emplace(name, std::make_unique<Table>(name));
  insertion_order_.push_back(name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  NEO_CHECK_MSG(it != tables_.end(), name.c_str());
  return *it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(name);
  NEO_CHECK_MSG(it != tables_.end(), name.c_str());
  return *it->second;
}

std::vector<std::string> Database::table_names() const { return insertion_order_; }

size_t Database::total_rows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->num_rows();
  return total;
}

}  // namespace neo::storage
