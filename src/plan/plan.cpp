#include "src/plan/plan.h"

#include <algorithm>
#include <functional>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::plan {

const char* JoinOpName(JoinOp op) {
  switch (op) {
    case JoinOp::kHash: return "HJ";
    case JoinOp::kMerge: return "MJ";
    case JoinOp::kLoop: return "LJ";
  }
  return "?";
}

const char* ScanOpName(ScanOp op) {
  switch (op) {
    case ScanOp::kTable: return "T";
    case ScanOp::kIndex: return "I";
    case ScanOp::kUnspecified: return "U";
  }
  return "?";
}

size_t PlanNode::NumNodes() const {
  if (!is_join) return 1;
  return 1 + left->NumNodes() + right->NumNodes();
}

NodeRef MakeScan(ScanOp op, int table_id, uint64_t rel_mask) {
  auto node = std::make_shared<PlanNode>();
  node->is_join = false;
  node->scan_op = op;
  node->table_id = table_id;
  node->rel_mask = rel_mask;
  node->num_unspecified = op == ScanOp::kUnspecified ? 1 : 0;
  node->hash = util::HashCombine(
      util::Mix64(0x5ca0ULL + static_cast<uint64_t>(op)),
      util::Mix64(static_cast<uint64_t>(table_id) + 0x11ULL));
  node->subtree_fp = util::HashCombine(node->hash, util::Mix64(rel_mask));
  return node;
}

NodeRef MakeJoin(JoinOp op, NodeRef left, NodeRef right) {
  NEO_CHECK(left != nullptr && right != nullptr);
  NEO_CHECK((left->rel_mask & right->rel_mask) == 0);
  auto node = std::make_shared<PlanNode>();
  node->is_join = true;
  node->join_op = op;
  node->rel_mask = left->rel_mask | right->rel_mask;
  node->num_unspecified = left->num_unspecified + right->num_unspecified;
  node->hash = util::HashCombine(
      util::HashCombine(util::Mix64(0x701AULL + static_cast<uint64_t>(op)), left->hash),
      right->hash);
  node->subtree_fp = util::HashCombine(
      util::HashCombine(util::Mix64(0xac71ULL + static_cast<uint64_t>(op)),
                        left->subtree_fp),
      right->subtree_fp);
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

PartialPlan PartialPlan::Initial(const query::Query& q) {
  PartialPlan p;
  p.query = &q;
  p.roots.reserve(q.relations.size());
  for (size_t i = 0; i < q.relations.size(); ++i) {
    p.roots.push_back(MakeScan(ScanOp::kUnspecified, q.relations[i], 1ULL << i));
  }
  return p;
}

bool PartialPlan::IsComplete() const {
  return roots.size() == 1 && roots[0]->num_unspecified == 0;
}

size_t PartialPlan::NumUnspecified() const {
  size_t n = 0;
  for (const auto& r : roots) n += static_cast<size_t>(r->num_unspecified);
  return n;
}

uint64_t PartialPlan::CoveredMask() const {
  uint64_t mask = 0;
  for (const auto& r : roots) mask |= r->rel_mask;
  return mask;
}

uint64_t PartialPlan::Hash() const {
  // Order-independent: combine sorted root hashes.
  std::vector<uint64_t> hashes;
  hashes.reserve(roots.size());
  for (const auto& r : roots) hashes.push_back(r->hash);
  std::sort(hashes.begin(), hashes.end());
  uint64_t h = util::Mix64(0xf0e57ULL + hashes.size());
  for (uint64_t x : hashes) h = util::HashCombine(h, x);
  return h;
}

std::string NodeToString(const PlanNode& node, const catalog::Schema& schema) {
  if (!node.is_join) {
    return std::string(ScanOpName(node.scan_op)) + "(" +
           schema.table(node.table_id).name + ")";
  }
  return std::string(JoinOpName(node.join_op)) + "(" +
         NodeToString(*node.left, schema) + "," + NodeToString(*node.right, schema) + ")";
}

std::string PartialPlan::ToString(const catalog::Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i) out += ",";
    out += "[" + NodeToString(*roots[i], schema) + "]";
  }
  return out;
}

std::vector<PartialPlan> DecomposeForTraining(const PartialPlan& complete) {
  NEO_CHECK(complete.query != nullptr);
  const query::Query& q = *complete.query;
  std::vector<PartialPlan> states;

  // Builds the state {subtree} ∪ {U(r) | r not covered by subtree}.
  auto make_state = [&](const NodeRef& subtree) {
    PartialPlan p;
    p.query = &q;
    p.roots.push_back(subtree);
    for (size_t i = 0; i < q.relations.size(); ++i) {
      if (!(subtree->rel_mask & (1ULL << i))) {
        p.roots.push_back(MakeScan(ScanOp::kUnspecified, q.relations[i], 1ULL << i));
      }
    }
    return p;
  };

  std::function<void(const NodeRef&)> visit = [&](const NodeRef& node) {
    states.push_back(make_state(node));
    if (node->is_join) {
      visit(node->left);
      visit(node->right);
    }
  };
  for (const auto& root : complete.roots) visit(root);
  states.push_back(PartialPlan::Initial(q));
  return states;
}

namespace {

/// True if `sub` can be specialized into `full` (same shape & operators;
/// unspecified scans in `sub` may map to any scan of the same table).
bool NodeSpecializes(const PlanNode& sub, const PlanNode& full) {
  if (sub.is_join != full.is_join) return false;
  if (!sub.is_join) {
    if (sub.table_id != full.table_id) return false;
    return sub.scan_op == ScanOp::kUnspecified || sub.scan_op == full.scan_op;
  }
  if (sub.join_op != full.join_op) return false;
  return NodeSpecializes(*sub.left, *full.left) && NodeSpecializes(*sub.right, *full.right);
}

}  // namespace

bool IsSubplanOf(const PartialPlan& sub, const PartialPlan& full) {
  if (sub.query != full.query) return false;
  // Index full's subtrees by relation mask. Within one tree, a given relation
  // set appears at most once, and roots have disjoint masks, so the mapping
  // from sub-tree to full-subtree is forced.
  std::vector<const PlanNode*> by_mask;
  std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    by_mask.push_back(&n);
    if (n.is_join) {
      collect(*n.left);
      collect(*n.right);
    }
  };
  for (const auto& r : full.roots) collect(*r);

  for (const auto& tree : sub.roots) {
    bool matched = false;
    for (const PlanNode* candidate : by_mask) {
      if (candidate->rel_mask == tree->rel_mask &&
          NodeSpecializes(*tree, *candidate)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace neo::plan
