// Physical query execution plans (paper §3.1).
//
// A *partial plan* is a forest of immutable operator trees for a query q.
// Internal nodes are join operators (hash / merge / loop); leaves are scans
// (table / index / unspecified). A *complete plan* is a single tree with no
// unspecified scans. Nodes are immutable and shared between plans
// (shared_ptr), so the best-first search can branch cheaply.
//
// Index scans do not commit to a specific index column: per the paper, the
// execution engine applies semantically-necessary choices (it picks the join
// -key index when the scan feeds a loop join, otherwise a predicate-column
// index). See engine/latency_model.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/query/query.h"

namespace neo::plan {

enum class JoinOp : int { kHash = 0, kMerge = 1, kLoop = 2 };
constexpr int kNumJoinOps = 3;
const char* JoinOpName(JoinOp op);

enum class ScanOp : int { kTable = 0, kIndex = 1, kUnspecified = 2 };
const char* ScanOpName(ScanOp op);

struct PlanNode;
using NodeRef = std::shared_ptr<const PlanNode>;

struct PlanNode {
  bool is_join = false;

  // Join fields (is_join == true). Left child is the outer/probe side, right
  // child is the inner/build side.
  JoinOp join_op = JoinOp::kHash;
  NodeRef left;
  NodeRef right;

  // Scan fields (is_join == false).
  ScanOp scan_op = ScanOp::kUnspecified;
  int table_id = -1;

  /// Bitmask of relation *positions* (within Query::relations) covered.
  uint64_t rel_mask = 0;

  /// Number of unspecified scans in this subtree.
  int num_unspecified = 0;

  /// Structural hash (operators + shape + tables); cached at construction.
  uint64_t hash = 0;

  /// Subtree fingerprint: like `hash` but additionally mixing in rel_mask at
  /// every node, so it determines the *featurization* of the entire subtree
  /// (scan/join bits depend on ops + tables; the optional cardinality channel
  /// depends on rel_mask). Within one query, equal fingerprints imply
  /// bit-identical feature rows for the node and all descendants — the key of
  /// the search's per-node conv-activation cache. Cached at construction.
  uint64_t subtree_fp = 0;

  size_t NumNodes() const;
};

/// Creates a scan leaf.
NodeRef MakeScan(ScanOp op, int table_id, uint64_t rel_mask);

/// Creates a join node over two subtrees.
NodeRef MakeJoin(JoinOp op, NodeRef left, NodeRef right);

/// A partial execution plan: forest of trees over a query's relations.
class PartialPlan {
 public:
  PartialPlan() = default;

  /// Initial search state: one unspecified scan per relation of `q`.
  static PartialPlan Initial(const query::Query& q);

  const query::Query* query = nullptr;
  std::vector<NodeRef> roots;

  bool IsComplete() const;
  size_t NumUnspecified() const;
  uint64_t CoveredMask() const;

  /// Order-independent hash of the whole forest.
  uint64_t Hash() const;

  /// Human-readable rendering, e.g. "[HJ(T(title),I(keyword))],[U(cast)]".
  std::string ToString(const catalog::Schema& schema) const;
};

/// Renders a single tree.
std::string NodeToString(const PlanNode& node, const catalog::Schema& schema);

/// Training decomposition (paper §4): partial-plan states whose best-known
/// cost is bounded by this complete plan's cost. For each subtree S of the
/// plan we emit the state {S} ∪ {U(r) | r outside S}, plus the all-
/// unspecified initial state.
std::vector<PartialPlan> DecomposeForTraining(const PartialPlan& complete);

/// True if `sub` is a subplan of `full` per the paper's definition: every
/// tree of `sub` either appears as a subtree of `full` (exactly, or with
/// unspecified scans specialized) or is a lone scan leaf.
bool IsSubplanOf(const PartialPlan& sub, const PartialPlan& full);

}  // namespace neo::plan
