#include "src/datagen/tpch_gen.h"

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::datagen {

using storage::ColumnType;

namespace {
const std::vector<std::string> kRegions = {"africa", "america", "asia", "europe",
                                           "mideast"};
const std::vector<std::string> kSegments = {"automobile", "building", "furniture",
                                            "household", "machinery"};
const std::vector<std::string> kPriorities = {"1-urgent", "2-high", "3-medium",
                                              "4-low", "5-none"};
const std::vector<std::string> kBrands = {"brand11", "brand12", "brand13", "brand21",
                                          "brand22", "brand23", "brand31", "brand32",
                                          "brand33", "brand41"};
const std::vector<std::string> kTypes = {"anodized-steel", "burnished-brass",
                                         "economy-copper", "plated-tin",
                                         "polished-nickel", "promo-steel",
                                         "standard-brass", "small-copper"};
const std::vector<std::string> kContainers = {"jumbo-bag", "lg-box", "med-case",
                                              "sm-drum", "wrap-jar"};
const std::vector<std::string> kFlags = {"A", "N", "R"};
}  // namespace

Dataset GenerateTpch(const GenOptions& options) {
  Dataset ds;
  util::Rng rng(options.seed);
  const double s = options.scale;

  const size_t n_nation = 25;
  const size_t n_supplier = static_cast<size_t>(400 * s);
  const size_t n_customer = static_cast<size_t>(2500 * s);
  const size_t n_part = static_cast<size_t>(3000 * s);
  const size_t n_partsupp = n_part * 4;
  const size_t n_orders = static_cast<size_t>(10000 * s);
  const size_t avg_lines = 4;

  catalog::Schema& schema = ds.schema;
  schema.AddTable("region",
                  {{"r_regionkey", ColumnType::kInt}, {"r_name", ColumnType::kString}},
                  "r_regionkey");
  schema.AddTable("nation",
                  {{"n_nationkey", ColumnType::kInt},
                   {"n_name", ColumnType::kString},
                   {"n_regionkey", ColumnType::kInt}},
                  "n_nationkey");
  schema.AddTable("supplier",
                  {{"s_suppkey", ColumnType::kInt},
                   {"s_nationkey", ColumnType::kInt},
                   {"s_acctbal", ColumnType::kInt}},
                  "s_suppkey");
  schema.AddTable("customer",
                  {{"c_custkey", ColumnType::kInt},
                   {"c_nationkey", ColumnType::kInt},
                   {"c_mktsegment", ColumnType::kString},
                   {"c_acctbal", ColumnType::kInt}},
                  "c_custkey");
  schema.AddTable("part",
                  {{"p_partkey", ColumnType::kInt},
                   {"p_brand", ColumnType::kString},
                   {"p_type", ColumnType::kString},
                   {"p_size", ColumnType::kInt},
                   {"p_container", ColumnType::kString}},
                  "p_partkey");
  schema.AddTable("partsupp",
                  {{"ps_partkey", ColumnType::kInt},
                   {"ps_suppkey", ColumnType::kInt},
                   {"ps_supplycost", ColumnType::kInt}},
                  "");
  schema.AddTable("orders",
                  {{"o_orderkey", ColumnType::kInt},
                   {"o_custkey", ColumnType::kInt},
                   {"o_orderdate", ColumnType::kInt},
                   {"o_orderpriority", ColumnType::kString},
                   {"o_totalprice", ColumnType::kInt}},
                  "o_orderkey");
  schema.AddTable("lineitem",
                  {{"l_linekey", ColumnType::kInt},
                   {"l_orderkey", ColumnType::kInt},
                   {"l_partkey", ColumnType::kInt},
                   {"l_suppkey", ColumnType::kInt},
                   {"l_quantity", ColumnType::kInt},
                   {"l_discount", ColumnType::kInt},
                   {"l_shipdate", ColumnType::kInt},
                   {"l_returnflag", ColumnType::kString}},
                  "l_linekey");

  schema.AddForeignKey("nation", "n_regionkey", "region", "r_regionkey");
  schema.AddForeignKey("supplier", "s_nationkey", "nation", "n_nationkey");
  schema.AddForeignKey("customer", "c_nationkey", "nation", "n_nationkey");
  schema.AddForeignKey("partsupp", "ps_partkey", "part", "p_partkey");
  schema.AddForeignKey("partsupp", "ps_suppkey", "supplier", "s_suppkey");
  schema.AddForeignKey("orders", "o_custkey", "customer", "c_custkey");
  schema.AddForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey");
  schema.AddForeignKey("lineitem", "l_partkey", "part", "p_partkey");
  schema.AddForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey");

  schema.MarkIndexed("nation", "n_regionkey");
  schema.MarkIndexed("supplier", "s_nationkey");
  schema.MarkIndexed("customer", "c_nationkey");
  schema.MarkIndexed("partsupp", "ps_partkey");
  schema.MarkIndexed("partsupp", "ps_suppkey");
  schema.MarkIndexed("orders", "o_custkey");
  schema.MarkIndexed("orders", "o_orderdate");
  schema.MarkIndexed("lineitem", "l_orderkey");
  schema.MarkIndexed("lineitem", "l_partkey");
  schema.MarkIndexed("lineitem", "l_suppkey");
  schema.MarkIndexed("lineitem", "l_shipdate");

  storage::Database& db = *ds.db;

  {
    storage::Table& t = db.AddTable("region");
    storage::Column& key = t.AddColumn("r_regionkey", ColumnType::kInt);
    storage::Column& name = t.AddColumn("r_name", ColumnType::kString);
    for (size_t i = 0; i < kRegions.size(); ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      name.AppendString(kRegions[i]);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("nation");
    storage::Column& key = t.AddColumn("n_nationkey", ColumnType::kInt);
    storage::Column& name = t.AddColumn("n_name", ColumnType::kString);
    storage::Column& region = t.AddColumn("n_regionkey", ColumnType::kInt);
    for (size_t i = 0; i < n_nation; ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      name.AppendString(util::StrFormat("nation%02zu", i));
      region.AppendInt(static_cast<int64_t>(i % kRegions.size()));
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("supplier");
    storage::Column& key = t.AddColumn("s_suppkey", ColumnType::kInt);
    storage::Column& nation = t.AddColumn("s_nationkey", ColumnType::kInt);
    storage::Column& bal = t.AddColumn("s_acctbal", ColumnType::kInt);
    for (size_t i = 0; i < n_supplier; ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      nation.AppendInt(static_cast<int64_t>(rng.NextBounded(n_nation)));
      bal.AppendInt(rng.NextInt(-999, 9999));
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("customer");
    storage::Column& key = t.AddColumn("c_custkey", ColumnType::kInt);
    storage::Column& nation = t.AddColumn("c_nationkey", ColumnType::kInt);
    storage::Column& seg = t.AddColumn("c_mktsegment", ColumnType::kString);
    storage::Column& bal = t.AddColumn("c_acctbal", ColumnType::kInt);
    for (size_t i = 0; i < n_customer; ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      nation.AppendInt(static_cast<int64_t>(rng.NextBounded(n_nation)));
      seg.AppendString(kSegments[rng.NextBounded(kSegments.size())]);
      bal.AppendInt(rng.NextInt(-999, 9999));
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("part");
    storage::Column& key = t.AddColumn("p_partkey", ColumnType::kInt);
    storage::Column& brand = t.AddColumn("p_brand", ColumnType::kString);
    storage::Column& type = t.AddColumn("p_type", ColumnType::kString);
    storage::Column& size = t.AddColumn("p_size", ColumnType::kInt);
    storage::Column& container = t.AddColumn("p_container", ColumnType::kString);
    for (size_t i = 0; i < n_part; ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      brand.AppendString(kBrands[rng.NextBounded(kBrands.size())]);
      type.AppendString(kTypes[rng.NextBounded(kTypes.size())]);
      size.AppendInt(rng.NextInt(1, 50));
      container.AppendString(kContainers[rng.NextBounded(kContainers.size())]);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("partsupp");
    storage::Column& part = t.AddColumn("ps_partkey", ColumnType::kInt);
    storage::Column& supp = t.AddColumn("ps_suppkey", ColumnType::kInt);
    storage::Column& cost = t.AddColumn("ps_supplycost", ColumnType::kInt);
    for (size_t i = 0; i < n_partsupp; ++i) {
      part.AppendInt(static_cast<int64_t>(i % n_part));
      supp.AppendInt(static_cast<int64_t>(rng.NextBounded(n_supplier)));
      cost.AppendInt(rng.NextInt(1, 1000));
    }
    t.SealRows();
  }
  std::vector<int> order_date(n_orders);
  {
    storage::Table& t = db.AddTable("orders");
    storage::Column& key = t.AddColumn("o_orderkey", ColumnType::kInt);
    storage::Column& cust = t.AddColumn("o_custkey", ColumnType::kInt);
    storage::Column& date = t.AddColumn("o_orderdate", ColumnType::kInt);
    storage::Column& prio = t.AddColumn("o_orderpriority", ColumnType::kString);
    storage::Column& total = t.AddColumn("o_totalprice", ColumnType::kInt);
    for (size_t i = 0; i < n_orders; ++i) {
      key.AppendInt(static_cast<int64_t>(i));
      cust.AppendInt(static_cast<int64_t>(rng.NextBounded(n_customer)));
      order_date[i] = static_cast<int>(rng.NextBounded(2557));  // ~7 years of days
      date.AppendInt(order_date[i]);
      prio.AppendString(kPriorities[rng.NextBounded(kPriorities.size())]);
      total.AppendInt(rng.NextInt(100, 500000));
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("lineitem");
    storage::Column& key = t.AddColumn("l_linekey", ColumnType::kInt);
    storage::Column& order = t.AddColumn("l_orderkey", ColumnType::kInt);
    storage::Column& part = t.AddColumn("l_partkey", ColumnType::kInt);
    storage::Column& supp = t.AddColumn("l_suppkey", ColumnType::kInt);
    storage::Column& qty = t.AddColumn("l_quantity", ColumnType::kInt);
    storage::Column& disc = t.AddColumn("l_discount", ColumnType::kInt);
    storage::Column& ship = t.AddColumn("l_shipdate", ColumnType::kInt);
    storage::Column& flag = t.AddColumn("l_returnflag", ColumnType::kString);
    int64_t next = 0;
    for (size_t o = 0; o < n_orders; ++o) {
      const size_t lines = 1 + rng.NextBounded(avg_lines * 2 - 1);
      for (size_t l = 0; l < lines; ++l) {
        key.AppendInt(next++);
        order.AppendInt(static_cast<int64_t>(o));
        part.AppendInt(static_cast<int64_t>(rng.NextBounded(n_part)));
        supp.AppendInt(static_cast<int64_t>(rng.NextBounded(n_supplier)));
        qty.AppendInt(rng.NextInt(1, 50));
        disc.AppendInt(rng.NextInt(0, 10));
        ship.AppendInt(order_date[o] + rng.NextInt(1, 120));
        flag.AppendString(kFlags[rng.NextBounded(kFlags.size())]);
      }
    }
    t.SealRows();
  }

  catalog::BuildDeclaredIndexes(schema, ds.db.get());
  return ds;
}

}  // namespace neo::datagen
