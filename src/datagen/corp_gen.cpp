#include "src/datagen/corp_gen.h"

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::datagen {

using storage::ColumnType;

namespace {
const std::vector<std::string> kSegments = {"enterprise", "smb", "consumer",
                                            "education", "government"};
const std::vector<std::string> kCountries = {"us", "de", "jp", "br", "in",
                                             "fr", "uk", "au", "ca", "mx"};
const std::vector<std::string> kCategories = {"analytics", "storage",  "compute",
                                              "network",   "security", "ml",
                                              "mobile",    "search"};
const std::vector<std::string> kTiers = {"free", "basic", "pro", "enterprise"};
const std::vector<std::string> kZones = {"amer", "emea", "apac"};
const std::vector<std::string> kMediums = {"web", "mobile", "api", "partner"};
}  // namespace

Dataset GenerateCorp(const GenOptions& options) {
  Dataset ds;
  util::Rng rng(options.seed);
  const double s = options.scale;

  const size_t n_user = static_cast<size_t>(4000 * s);
  const size_t n_product = static_cast<size_t>(600 * s);
  const size_t n_region = 48;
  const size_t n_date = 730;
  const size_t n_channel = 12;
  const size_t n_fact = static_cast<size_t>(50000 * s);

  catalog::Schema& schema = ds.schema;
  schema.AddTable("dim_user",
                  {{"id", ColumnType::kInt},
                   {"segment", ColumnType::kString},
                   {"country", ColumnType::kString},
                   {"signup_year", ColumnType::kInt}},
                  "id");
  schema.AddTable("dim_product",
                  {{"id", ColumnType::kInt},
                   {"category", ColumnType::kString},
                   {"price_tier", ColumnType::kString}},
                  "id");
  schema.AddTable("dim_region",
                  {{"id", ColumnType::kInt}, {"zone", ColumnType::kString}}, "id");
  schema.AddTable("dim_date",
                  {{"id", ColumnType::kInt},
                   {"year", ColumnType::kInt},
                   {"month", ColumnType::kInt},
                   {"quarter", ColumnType::kInt}},
                  "id");
  schema.AddTable("dim_channel",
                  {{"id", ColumnType::kInt}, {"medium", ColumnType::kString}}, "id");
  schema.AddTable("fact_events",
                  {{"id", ColumnType::kInt},
                   {"user_id", ColumnType::kInt},
                   {"product_id", ColumnType::kInt},
                   {"region_id", ColumnType::kInt},
                   {"date_id", ColumnType::kInt},
                   {"channel_id", ColumnType::kInt},
                   {"amount", ColumnType::kInt},
                   {"duration", ColumnType::kInt}},
                  "id");

  schema.AddForeignKey("fact_events", "user_id", "dim_user", "id");
  schema.AddForeignKey("fact_events", "product_id", "dim_product", "id");
  schema.AddForeignKey("fact_events", "region_id", "dim_region", "id");
  schema.AddForeignKey("fact_events", "date_id", "dim_date", "id");
  schema.AddForeignKey("fact_events", "channel_id", "dim_channel", "id");

  for (const char* col : {"user_id", "product_id", "region_id", "date_id",
                          "channel_id"}) {
    schema.MarkIndexed("fact_events", col);
  }
  schema.MarkIndexed("dim_user", "signup_year");

  storage::Database& db = *ds.db;

  // Correlated dimensions: segment influences country; category influences
  // price tier. Skewed usage: hot users/products dominate the fact table.
  std::vector<int> user_segment(n_user);
  {
    storage::Table& t = db.AddTable("dim_user");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& seg = t.AddColumn("segment", ColumnType::kString);
    storage::Column& country = t.AddColumn("country", ColumnType::kString);
    storage::Column& year = t.AddColumn("signup_year", ColumnType::kInt);
    util::Zipf seg_dist(kSegments.size(), 0.8, options.seed + 11);
    for (size_t i = 0; i < n_user; ++i) {
      const int sg = static_cast<int>(seg_dist.Sample(rng));
      user_segment[i] = sg;
      id.AppendInt(static_cast<int64_t>(i));
      seg.AppendString(kSegments[static_cast<size_t>(sg)]);
      // Country correlated with segment: each segment concentrates in 3
      // countries.
      const size_t country_idx =
          rng.NextBool(0.7)
              ? (static_cast<size_t>(sg) * 2 + rng.NextBounded(3)) % kCountries.size()
              : rng.NextBounded(kCountries.size());
      country.AppendString(kCountries[country_idx]);
      year.AppendInt(rng.NextInt(2008, 2019));
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("dim_product");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& cat = t.AddColumn("category", ColumnType::kString);
    storage::Column& tier = t.AddColumn("price_tier", ColumnType::kString);
    util::Zipf cat_dist(kCategories.size(), 0.9, options.seed + 12);
    for (size_t i = 0; i < n_product; ++i) {
      const size_t c = cat_dist.Sample(rng);
      id.AppendInt(static_cast<int64_t>(i));
      cat.AppendString(kCategories[c]);
      // Tier correlated with category.
      const size_t tier_idx = rng.NextBool(0.6) ? c % kTiers.size()
                                                : rng.NextBounded(kTiers.size());
      tier.AppendString(kTiers[tier_idx]);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("dim_region");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& zone = t.AddColumn("zone", ColumnType::kString);
    for (size_t i = 0; i < n_region; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      zone.AppendString(kZones[i % kZones.size()]);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("dim_date");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& year = t.AddColumn("year", ColumnType::kInt);
    storage::Column& month = t.AddColumn("month", ColumnType::kInt);
    storage::Column& quarter = t.AddColumn("quarter", ColumnType::kInt);
    for (size_t i = 0; i < n_date; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      const int y = 2017 + static_cast<int>(i / 365);
      const int m = static_cast<int>((i / 30) % 12) + 1;
      year.AppendInt(y);
      month.AppendInt(m);
      quarter.AppendInt((m - 1) / 3 + 1);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("dim_channel");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& medium = t.AddColumn("medium", ColumnType::kString);
    for (size_t i = 0; i < n_channel; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      medium.AppendString(kMediums[i % kMediums.size()]);
    }
    t.SealRows();
  }
  {
    storage::Table& t = db.AddTable("fact_events");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& user = t.AddColumn("user_id", ColumnType::kInt);
    storage::Column& product = t.AddColumn("product_id", ColumnType::kInt);
    storage::Column& region = t.AddColumn("region_id", ColumnType::kInt);
    storage::Column& date = t.AddColumn("date_id", ColumnType::kInt);
    storage::Column& channel = t.AddColumn("channel_id", ColumnType::kInt);
    storage::Column& amount = t.AddColumn("amount", ColumnType::kInt);
    storage::Column& duration = t.AddColumn("duration", ColumnType::kInt);
    util::Zipf user_dist(n_user, 1.1, options.seed + 13);
    util::Zipf product_dist(n_product, 1.0, options.seed + 14);
    util::Zipf channel_dist(n_channel, 0.8, options.seed + 15);
    for (size_t i = 0; i < n_fact; ++i) {
      const size_t u = user_dist.Sample(rng);
      id.AppendInt(static_cast<int64_t>(i));
      user.AppendInt(static_cast<int64_t>(u));
      product.AppendInt(static_cast<int64_t>(product_dist.Sample(rng)));
      region.AppendInt(static_cast<int64_t>(rng.NextBounded(n_region)));
      date.AppendInt(static_cast<int64_t>(rng.NextBounded(n_date)));
      channel.AppendInt(static_cast<int64_t>(channel_dist.Sample(rng)));
      // Amount correlated with user segment (enterprise spends more).
      const int base = (user_segment[u] == 0) ? 5000 : 200;
      amount.AppendInt(rng.NextInt(base, base * 10));
      duration.AppendInt(rng.NextInt(1, 3600));
    }
    t.SealRows();
  }

  catalog::BuildDeclaredIndexes(schema, ds.db.get());
  return ds;
}

}  // namespace neo::datagen
