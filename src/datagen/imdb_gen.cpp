#include "src/datagen/imdb_gen.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::datagen {

using storage::ColumnType;

namespace {

const std::vector<std::string> kGenres = {
    "action", "adventure", "comedy",      "romance", "horror",  "scifi",
    "drama",  "thriller",  "documentary", "fantasy", "crime",   "family"};

const std::vector<std::string> kCountries = {
    "usa",    "france", "germany", "japan",  "china", "india", "italy", "spain",
    "mexico", "brazil", "canada",  "russia", "korea", "uk",    "sweden"};

// Genre-specific keyword stems. Stems are reused across suffixes so that
// LIKE '%stem%' predicates match a whole family of keywords that share a
// genre affinity (Table 2: 'love'<->romance, 'fight'<->action).
const std::vector<std::vector<std::string>> kKeywordStems = {
    {"fight", "explosion", "chase", "gun", "hero"},          // action
    {"quest", "island", "treasure", "jungle", "voyage"},     // adventure
    {"joke", "satire", "parody", "slapstick", "sitcom"},     // comedy
    {"love", "wedding", "kiss", "heart", "affair"},          // romance
    {"blood", "ghost", "slasher", "curse", "zombie"},        // horror
    {"space", "robot", "alien", "future", "cyborg"},         // scifi
    {"family-drama", "tragedy", "memoir", "courtroom", "illness"},  // drama
    {"conspiracy", "spy", "hostage", "assassin", "heist"},   // thriller
    {"nature", "biography", "war-footage", "archive", "interview"},  // documentary
    {"dragon", "magic", "kingdom", "wizard", "prophecy"},    // fantasy
    {"murder", "detective", "gangster", "prison", "noir"},   // crime
    {"holiday", "animal", "school", "toy", "friendship"},    // family
};

const std::vector<std::string> kInfoTypes = {"genres", "country", "rating", "budget"};

}  // namespace

const std::vector<std::string>& ImdbGenreNames() { return kGenres; }
const std::vector<std::string>& ImdbCountryNames() { return kCountries; }
const std::vector<std::string>& ImdbKeywordStems(int genre) {
  return kKeywordStems[static_cast<size_t>(genre) % kKeywordStems.size()];
}

Dataset GenerateImdb(const GenOptions& options, ImdbGenStats* stats) {
  Dataset ds;
  util::Rng rng(options.seed);
  const double s = options.scale;

  const size_t n_title = static_cast<size_t>(8000 * s);
  const size_t n_keyword = std::max<size_t>(
      kGenres.size() * kKeywordStems[0].size(),
      static_cast<size_t>(500 * std::sqrt(s)));
  const size_t n_name = static_cast<size_t>(4000 * s);
  const size_t n_company = static_cast<size_t>(400 * std::sqrt(s));
  const int n_genre = static_cast<int>(kGenres.size());
  const int n_country = static_cast<int>(kCountries.size());

  // ---- Schema ----------------------------------------------------------
  catalog::Schema& schema = ds.schema;
  schema.AddTable("info_type", {{"id", ColumnType::kInt}, {"info", ColumnType::kString}},
                  "id");
  schema.AddTable("title",
                  {{"id", ColumnType::kInt},
                   {"kind_id", ColumnType::kInt},
                   {"production_year", ColumnType::kInt},
                   {"popularity", ColumnType::kInt}},
                  "id");
  schema.AddTable("movie_info",
                  {{"id", ColumnType::kInt},
                   {"movie_id", ColumnType::kInt},
                   {"info_type_id", ColumnType::kInt},
                   {"info", ColumnType::kString}},
                  "id");
  schema.AddTable("keyword", {{"id", ColumnType::kInt}, {"keyword", ColumnType::kString}},
                  "id");
  schema.AddTable("movie_keyword",
                  {{"id", ColumnType::kInt},
                   {"movie_id", ColumnType::kInt},
                   {"keyword_id", ColumnType::kInt}},
                  "id");
  schema.AddTable("name",
                  {{"id", ColumnType::kInt},
                   {"gender", ColumnType::kInt},
                   {"birth_country", ColumnType::kString}},
                  "id");
  schema.AddTable("cast_info",
                  {{"id", ColumnType::kInt},
                   {"movie_id", ColumnType::kInt},
                   {"person_id", ColumnType::kInt},
                   {"role_id", ColumnType::kInt}},
                  "id");
  schema.AddTable("company_name",
                  {{"id", ColumnType::kInt}, {"country_code", ColumnType::kString}},
                  "id");
  schema.AddTable("movie_companies",
                  {{"id", ColumnType::kInt},
                   {"movie_id", ColumnType::kInt},
                   {"company_id", ColumnType::kInt}},
                  "id");

  schema.AddForeignKey("movie_info", "movie_id", "title", "id");
  schema.AddForeignKey("movie_info", "info_type_id", "info_type", "id");
  schema.AddForeignKey("movie_keyword", "movie_id", "title", "id");
  schema.AddForeignKey("movie_keyword", "keyword_id", "keyword", "id");
  schema.AddForeignKey("cast_info", "movie_id", "title", "id");
  schema.AddForeignKey("cast_info", "person_id", "name", "id");
  schema.AddForeignKey("movie_companies", "movie_id", "title", "id");
  schema.AddForeignKey("movie_companies", "company_id", "company_name", "id");

  schema.MarkIndexed("movie_info", "movie_id");
  schema.MarkIndexed("movie_info", "info_type_id");
  schema.MarkIndexed("movie_keyword", "movie_id");
  schema.MarkIndexed("movie_keyword", "keyword_id");
  schema.MarkIndexed("cast_info", "movie_id");
  schema.MarkIndexed("cast_info", "person_id");
  schema.MarkIndexed("movie_companies", "movie_id");
  schema.MarkIndexed("movie_companies", "company_id");
  schema.MarkIndexed("title", "production_year");

  // ---- Latent state ----------------------------------------------------
  // Genre popularity is skewed (drama/comedy movies dominate), as is movie
  // popularity (blockbusters get more keywords/cast entries).
  util::Zipf genre_dist(static_cast<size_t>(n_genre), 0.7, options.seed + 1);
  util::Zipf country_dist(static_cast<size_t>(n_country), 0.9, options.seed + 2);
  util::Zipf pop_dist(10, 1.2, 0);

  std::vector<int> movie_genre(n_title);
  std::vector<int> movie_country(n_title);
  std::vector<int> movie_year(n_title);
  std::vector<int> movie_pop(n_title);
  for (size_t i = 0; i < n_title; ++i) {
    movie_genre[i] = static_cast<int>(genre_dist.Sample(rng));
    movie_country[i] = static_cast<int>(country_dist.Sample(rng));
    // Year correlates mildly with genre (e.g. scifi skews recent).
    const int base = 1950 + static_cast<int>(rng.NextBounded(70));
    movie_year[i] = std::min(2019, base + movie_genre[i] % 4 * 5);
    movie_pop[i] = static_cast<int>(pop_dist.Sample(rng));  // 0 = hottest decile
  }

  // Keywords: each keyword belongs to a primary genre and is named
  // "<stem><index>" from that genre's stem pool.
  // The first |genres| x |stems| keywords enumerate every (genre, stem)
  // combination so that each stem exists at every scale (workload LIKE
  // predicates rely on this); the rest are drawn from the skewed genre
  // distribution.
  std::vector<int> keyword_genre(n_keyword);
  std::vector<std::string> keyword_text(n_keyword);
  const size_t stems_per_genre = kKeywordStems[0].size();
  for (size_t k = 0; k < n_keyword; ++k) {
    int g;
    size_t stem_idx;
    if (k < static_cast<size_t>(n_genre) * stems_per_genre) {
      g = static_cast<int>(k / stems_per_genre);
      stem_idx = k % stems_per_genre;
    } else {
      g = static_cast<int>(genre_dist.Sample(rng));
      stem_idx = rng.NextBounded(stems_per_genre);
    }
    keyword_genre[k] = g;
    const auto& stem = kKeywordStems[static_cast<size_t>(g)][stem_idx];
    keyword_text[k] = util::StrFormat("%s-%03zu", stem.c_str(), k);
  }

  // Actors: birth country, skewed like movie countries.
  std::vector<int> person_country(n_name);
  for (size_t p = 0; p < n_name; ++p) {
    person_country[p] = static_cast<int>(country_dist.Sample(rng));
  }
  // Bucket actors by country for correlated casting.
  std::vector<std::vector<uint32_t>> actors_by_country(
      static_cast<size_t>(n_country));
  for (size_t p = 0; p < n_name; ++p) {
    actors_by_country[static_cast<size_t>(person_country[p])].push_back(
        static_cast<uint32_t>(p));
  }

  std::vector<int> company_country(n_company);
  std::vector<std::vector<uint32_t>> companies_by_country(
      static_cast<size_t>(n_country));
  for (size_t c = 0; c < n_company; ++c) {
    company_country[c] = static_cast<int>(country_dist.Sample(rng));
    companies_by_country[static_cast<size_t>(company_country[c])].push_back(
        static_cast<uint32_t>(c));
  }

  // ---- Materialize tables ----------------------------------------------
  storage::Database& db = *ds.db;

  {
    storage::Table& t = db.AddTable("info_type");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& info = t.AddColumn("info", ColumnType::kString);
    for (size_t i = 0; i < kInfoTypes.size(); ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      info.AppendString(kInfoTypes[i]);
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("title");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& kind = t.AddColumn("kind_id", ColumnType::kInt);
    storage::Column& year = t.AddColumn("production_year", ColumnType::kInt);
    storage::Column& pop = t.AddColumn("popularity", ColumnType::kInt);
    for (size_t i = 0; i < n_title; ++i) {
      id.AppendInt(static_cast<int64_t>(i));
      kind.AppendInt(static_cast<int64_t>(rng.NextBounded(3)));
      year.AppendInt(movie_year[i]);
      pop.AppendInt(movie_pop[i]);
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("movie_info");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& movie = t.AddColumn("movie_id", ColumnType::kInt);
    storage::Column& type = t.AddColumn("info_type_id", ColumnType::kInt);
    storage::Column& info = t.AddColumn("info", ColumnType::kString);
    int64_t next_id = 0;
    for (size_t m = 0; m < n_title; ++m) {
      // genres row
      id.AppendInt(next_id++);
      movie.AppendInt(static_cast<int64_t>(m));
      type.AppendInt(0);
      info.AppendString(kGenres[static_cast<size_t>(movie_genre[m])]);
      // country row
      id.AppendInt(next_id++);
      movie.AppendInt(static_cast<int64_t>(m));
      type.AppendInt(1);
      info.AppendString(kCountries[static_cast<size_t>(movie_country[m])]);
      // rating row: popularity-correlated bucket "r0".."r9"
      id.AppendInt(next_id++);
      movie.AppendInt(static_cast<int64_t>(m));
      type.AppendInt(2);
      info.AppendString(util::StrFormat("r%d", movie_pop[m]));
      // budget row: genre-correlated bucket
      id.AppendInt(next_id++);
      movie.AppendInt(static_cast<int64_t>(m));
      type.AppendInt(3);
      info.AppendString(util::StrFormat(
          "b%d", (movie_genre[m] + static_cast<int>(rng.NextBounded(3))) % 8));
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("keyword");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& kw = t.AddColumn("keyword", ColumnType::kString);
    for (size_t k = 0; k < n_keyword; ++k) {
      id.AppendInt(static_cast<int64_t>(k));
      kw.AppendString(keyword_text[k]);
    }
    t.SealRows();
  }

  // Keywords per movie: drawn from the movie's genre pool w.p. 0.75, else
  // uniform. Popular movies get more keywords.
  std::vector<std::vector<uint32_t>> keywords_by_genre(
      static_cast<size_t>(n_genre));
  for (size_t k = 0; k < n_keyword; ++k) {
    keywords_by_genre[static_cast<size_t>(keyword_genre[k])].push_back(
        static_cast<uint32_t>(k));
  }
  {
    storage::Table& t = db.AddTable("movie_keyword");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& movie = t.AddColumn("movie_id", ColumnType::kInt);
    storage::Column& kw = t.AddColumn("keyword_id", ColumnType::kInt);
    int64_t next_id = 0;
    for (size_t m = 0; m < n_title; ++m) {
      const size_t n_kw = 2 + (9 - static_cast<size_t>(movie_pop[m])) / 3 +
                          rng.NextBounded(3);
      for (size_t i = 0; i < n_kw; ++i) {
        uint32_t kid;
        const auto& pool = keywords_by_genre[static_cast<size_t>(movie_genre[m])];
        if (!pool.empty() && rng.NextBool(0.75)) {
          kid = pool[rng.NextBounded(pool.size())];
        } else {
          kid = static_cast<uint32_t>(rng.NextBounded(n_keyword));
        }
        id.AppendInt(next_id++);
        movie.AppendInt(static_cast<int64_t>(m));
        kw.AppendInt(kid);
      }
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("name");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& gender = t.AddColumn("gender", ColumnType::kInt);
    storage::Column& country = t.AddColumn("birth_country", ColumnType::kString);
    for (size_t p = 0; p < n_name; ++p) {
      id.AppendInt(static_cast<int64_t>(p));
      gender.AppendInt(static_cast<int64_t>(rng.NextBounded(2)));
      country.AppendString(kCountries[static_cast<size_t>(person_country[p])]);
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("cast_info");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& movie = t.AddColumn("movie_id", ColumnType::kInt);
    storage::Column& person = t.AddColumn("person_id", ColumnType::kInt);
    storage::Column& role = t.AddColumn("role_id", ColumnType::kInt);
    int64_t next_id = 0;
    for (size_t m = 0; m < n_title; ++m) {
      const size_t n_cast = 2 + (9 - static_cast<size_t>(movie_pop[m])) / 2;
      for (size_t i = 0; i < n_cast; ++i) {
        uint32_t pid;
        const auto& pool = actors_by_country[static_cast<size_t>(movie_country[m])];
        if (!pool.empty() && rng.NextBool(0.7)) {
          pid = pool[rng.NextBounded(pool.size())];
        } else {
          pid = static_cast<uint32_t>(rng.NextBounded(n_name));
        }
        id.AppendInt(next_id++);
        movie.AppendInt(static_cast<int64_t>(m));
        person.AppendInt(pid);
        role.AppendInt(static_cast<int64_t>(rng.NextBounded(10)));
      }
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("company_name");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& country = t.AddColumn("country_code", ColumnType::kString);
    for (size_t c = 0; c < n_company; ++c) {
      id.AppendInt(static_cast<int64_t>(c));
      country.AppendString(kCountries[static_cast<size_t>(company_country[c])]);
    }
    t.SealRows();
  }

  {
    storage::Table& t = db.AddTable("movie_companies");
    storage::Column& id = t.AddColumn("id", ColumnType::kInt);
    storage::Column& movie = t.AddColumn("movie_id", ColumnType::kInt);
    storage::Column& company = t.AddColumn("company_id", ColumnType::kInt);
    int64_t next_id = 0;
    for (size_t m = 0; m < n_title; ++m) {
      const size_t n_mc = 1 + rng.NextBounded(3);
      for (size_t i = 0; i < n_mc; ++i) {
        uint32_t cid;
        const auto& pool =
            companies_by_country[static_cast<size_t>(movie_country[m])];
        if (!pool.empty() && rng.NextBool(0.65)) {
          cid = pool[rng.NextBounded(pool.size())];
        } else {
          cid = static_cast<uint32_t>(rng.NextBounded(n_company));
        }
        id.AppendInt(next_id++);
        movie.AppendInt(static_cast<int64_t>(m));
        company.AppendInt(cid);
      }
    }
    t.SealRows();
  }

  catalog::BuildDeclaredIndexes(schema, ds.db.get());

  if (stats != nullptr) {
    stats->num_genres = n_genre;
    stats->num_countries = n_country;
    stats->num_keywords = static_cast<int>(n_keyword);
  }
  return ds;
}

}  // namespace neo::datagen
