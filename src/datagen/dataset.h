// A Dataset bundles generated data with its schema description. The three
// generators mirror the paper's evaluation datasets (§6.1):
//   ImdbGen  -> JOB's IMDB database (correlated, skewed)
//   TpchGen  -> TPC-H SF10 (uniform, independent; the control)
//   CorpGen  -> the anonymous 2TB dashboard workload (star schema, skewed)
// at laptop scale. See DESIGN.md §1 for the substitution argument.
#pragma once

#include <memory>

#include "src/catalog/schema.h"
#include "src/storage/table.h"

namespace neo::datagen {

struct Dataset {
  catalog::Schema schema;
  std::unique_ptr<storage::Database> db;

  Dataset() : db(std::make_unique<storage::Database>()) {}
};

/// Scale knobs shared by the generators. `scale = 1.0` is the default bench
/// size (~10^5 rows/dataset); tests use smaller scales.
struct GenOptions {
  double scale = 1.0;
  uint64_t seed = 42;
};

}  // namespace neo::datagen
