// IMDB-like dataset generator.
//
// Reproduces the *statistical pathologies* that make the Join Order Benchmark
// hard (Leis et al. [25], paper §5-6): cross-table correlations and skew that
// violate the uniformity/independence assumptions of histogram-based
// cardinality estimation. Each movie has a latent (genre, country, year,
// popularity); keywords, cast, and companies are drawn *conditionally* on
// that latent state:
//   - movie_keyword.keyword is drawn from a genre-specific keyword pool
//     (so `k.keyword LIKE '%love%' AND mi.info = 'romance'` is correlated:
//     exactly the paper's Table 2 / Figure 8 example);
//   - cast_info links actors whose birth country matches the movie's country
//     with high probability (the paper's "Paris-born actors play in French
//     movies" example, §5.1);
//   - movie_companies prefers same-country companies;
//   - popularity is Zipfian: hot movies have more keywords/cast rows.
#pragma once

#include "src/datagen/dataset.h"

namespace neo::datagen {

struct ImdbGenStats {
  int num_genres = 0;
  int num_countries = 0;
  int num_keywords = 0;
};

/// Schema (scaled IMDB subset):
///   info_type(id, info)                       -- 'genres','country','rating','budget'
///   title(id, kind_id, production_year, ...)
///   movie_info(id, movie_id, info_type_id, info)
///   keyword(id, keyword)
///   movie_keyword(id, movie_id, keyword_id)
///   name(id, gender, birth_country)
///   cast_info(id, movie_id, person_id, role_id)
///   company_name(id, country_code)
///   movie_companies(id, movie_id, company_id)
Dataset GenerateImdb(const GenOptions& options = {}, ImdbGenStats* stats = nullptr);

/// Word pools used for keyword construction; exposed so workloads and the
/// Table-2 bench can form LIKE predicates that hit a known genre.
const std::vector<std::string>& ImdbGenreNames();
const std::vector<std::string>& ImdbCountryNames();
const std::vector<std::string>& ImdbKeywordStems(int genre);

}  // namespace neo::datagen
