// "Corp"-like dataset generator: stands in for the paper's anonymous 2 TB
// internal dashboard workload (§6.1). A star schema with Zipf-skewed foreign
// keys and correlated dimension attributes (product category <-> price tier,
// user segment <-> country), at laptop scale.
#pragma once

#include "src/datagen/dataset.h"

namespace neo::datagen {

/// Schema:
///   dim_user(id, segment, country, signup_year)
///   dim_product(id, category, price_tier)
///   dim_region(id, zone)
///   dim_date(id, year, month, quarter)
///   dim_channel(id, medium)
///   fact_events(id, user_id, product_id, region_id, date_id, channel_id,
///               amount, duration)
Dataset GenerateCorp(const GenOptions& options = {});

}  // namespace neo::datagen
