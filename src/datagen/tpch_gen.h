// TPC-H-like dataset generator: the *uniform-data control* of the paper's
// evaluation. Columns are independent and near-uniform, so histogram-based
// estimation is accurate and R-Vector embeddings add little (paper §6.3.1:
// highest learning-curve variance, R-Vector least useful).
#pragma once

#include "src/datagen/dataset.h"

namespace neo::datagen {

/// Schema (TPC-H subset, laptop scale):
///   region(r_regionkey, r_name)
///   nation(n_nationkey, n_name, n_regionkey)
///   supplier(s_suppkey, s_nationkey, s_acctbal)
///   customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal)
///   part(p_partkey, p_brand, p_type, p_size, p_container)
///   partsupp(ps_partkey, ps_suppkey, ps_supplycost)
///   orders(o_orderkey, o_custkey, o_orderdate, o_orderpriority, o_totalprice)
///   lineitem(l_linekey, l_orderkey, l_partkey, l_suppkey, l_quantity,
///            l_discount, l_shipdate, l_returnflag)
Dataset GenerateTpch(const GenOptions& options = {});

}  // namespace neo::datagen
