// Durable per-query-type experience store with drift detection and adaptive
// serving modes (the ROADMAP's AQO-style item; cf. AQO's hash.c /
// auto_tuning.c / storage layers, and paper §2's experience collection).
//
// ## Query types
//
// The unit of experience is the *query type*: `Query::type_hash`, a
// constant-insensitive normalization of `Query::fingerprint` (predicate
// literals dropped), so all instantiations of one parameterized query —
// "differ only in constants" — share a record. Each type accumulates:
// observed serve latencies (EWMA + a baseline window), observed-vs-estimated
// cardinality corrections per relation subset, the best-known complete plan
// with its observed latency, regression counters, and a serving mode.
//
// ## Durability: WAL + snapshots
//
// Two files under StoreOptions::dir (empty dir = volatile in-memory store):
//
//   wal.log       'NEOL' v1 header, then append-only frames
//                 [u32 payload_len][u32 type][u64 lsn][payload][u64 fnv1a]
//   snapshot.bin  'NEOT' v1: [magic][version][last_lsn][num_types]
//                 [per-type records][u64 fnv1a over all preceding bytes],
//                 published atomically (tmp + fflush + fsync + rename)
//
// Record types: kObservation (one serve's latency + flags), kBestPlan (a
// better complete plan was found), kMode (a *manual* mode set — automatic
// transitions are never logged, see "replay determinism"), kCardCorrection
// (one observed/estimated cardinality ratio).
//
// ### Recovery invariant
//
// Open() loads the newest valid snapshot, then replays every WAL frame with
// lsn > snapshot.last_lsn, accepting the longest valid prefix; the WAL is
// then truncated to that prefix before appending resumes. A kill at ANY byte
// offset of the store's write stream loses at most the suffix appended since
// the last Sync()/Snapshot(), and never corrupts state:
//   - torn frame at EOF (crash mid-append)      -> dropped silently, kOk;
//   - torn snapshot tmp (crash mid-publish)     -> ignored; previous
//     published snapshot still authoritative (rename is the commit point);
//   - crash between snapshot publish and WAL reset -> stale frames carry
//     lsn <= last_lsn and are skipped (the LSN gate makes replay
//     idempotent even though EWMA updates are not);
//   - bit rot (checksum mismatch on a complete frame, or anywhere in the
//     snapshot) -> kDataLoss is REPORTED and recovery proceeds degraded
//     (valid WAL prefix only / empty state); corrupted bytes are never
//     silently loaded.
//
// ### Replay determinism
//
// Observations are logged as raw inputs (latency, from_search, improved)
// and re-applied through the SAME ApplyObservation state machine at
// recovery, so every automatic mode transition, counter, EWMA, and baseline
// re-derives exactly — state machine replay, not state copying. Anything
// the machine consults must therefore be a pure function of durable state
// (e.g. the probe schedule is `exploit_run_len % probe_interval == 0`, not
// a timer). kMode frames exist only for Freeze()/SetMode() calls, which
// originate outside the machine.
//
// ## Mode state machine (per type)
//
//            drift: ewma > demote_factor x baseline (needs best plan)
//          ┌──────────────────────────────────────────────┐
//          │  stability: stable_streak searches w/o a     │
//          │  better plan found                           ▼
//       kLearn ◄──────────────────────────────────── kExploit
//          ▲      drift entries: healthy_probes probes in a row
//          │      back under healthy_factor x baseline
//          │      any entry: exploit_bad_streak consecutive serves
//          └───── above demote_factor x baseline ("best" plan itself
//                 regressed -> baseline reset, re-search)
//
//       kFrozen: manual (Freeze/SetMode) only — pinned plan, no durable
//       updates, no automatic exit.
//
// kLearn serves search results and records everything; kExploit serves the
// best-known plan and skips search entirely (Decide().use_pinned); drift
// entries probe periodically so recovered types resume learning. The store
// COMPOSES with the PR-6 circuit breaker: the breaker guards individual
// fingerprints against the expert fallback per-serve, while the store
// governs whole types across restarts.
//
// ## Integration & threading
//
// `Neo::ServeAndMaybeLearn` records every serve (store attached via
// `Neo::SetExperienceStore`; nullptr detached = the literal unchanged code
// path); `ServingCore` consults Decide() before searching, syncs the WAL
// every store_sync_every requests, and flushes on Drain()/Stop(). The store
// implements featurize::CardCorrectionSource: learned corrections multiply
// the kEstimated cardinality channel, and epoch() feeds the search-cache
// validity tuple. One internal mutex serializes all public methods; WAL
// append order equals application order, which is what replay determinism
// needs. File I/O runs through util::FaultInjector's kIoShortWrite /
// kIoFailure / crash-budget sites when an injector is attached.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/featurize/featurizer.h"
#include "src/plan/plan.h"
#include "src/query/query.h"
#include "src/store/store_file.h"
#include "src/util/status.h"

namespace neo::store {

enum class TypeMode : uint8_t { kLearn = 0, kExploit = 1, kFrozen = 2 };
const char* TypeModeName(TypeMode mode);

/// Per-type drift detector + mode-transition thresholds.
struct DriftOptions {
  /// EWMA smoothing for observed latency.
  double ewma_alpha = 0.25;
  /// First N observations of a type form its baseline mean.
  int baseline_window = 8;
  /// Drift: EWMA above this multiple of baseline demotes a learning type to
  /// its best-known plan.
  double demote_factor = 2.5;
  /// A probe is healthy when its latency is within this multiple of
  /// baseline.
  double healthy_factor = 1.25;
  /// Consecutive healthy probes that re-promote a drift-demoted type.
  int healthy_probes = 3;
  /// In exploit mode, every k-th serve is a probe.
  int probe_interval = 4;
  /// Consecutive searched serves without a better plan that promote a
  /// stable type to exploit (0 = stability promotion off).
  int stable_streak = 0;
  /// Consecutive regressed serves in exploit mode that force the type back
  /// to learn with a reset baseline (the pinned plan itself went bad).
  int exploit_bad_streak = 4;
};

struct StoreOptions {
  /// Durability root (two files created inside). Empty = in-memory only.
  std::string dir;
  DriftOptions drift;
  /// Take a snapshot (and reset the WAL) once this many frames accumulate;
  /// checked at Sync()/Flush() boundaries. 0 = only explicit Snapshot().
  int snapshot_every = 1024;
  /// Cap on distinct relation subsets with corrections per type.
  int max_corrections_per_type = 64;
  /// Corrections whose running log-mean moved less than this do not bump
  /// the encoding epoch (avoids invalidating search caches per serve).
  double epoch_min_delta = 0.01;
};

/// Process-lifetime counters (not persisted; per-type durable state lives in
/// the records themselves).
struct StoreStats {
  uint64_t observations = 0;
  uint64_t search_serves = 0;
  uint64_t exploit_serves = 0;
  uint64_t probe_serves = 0;
  uint64_t frozen_serves = 0;
  uint64_t best_updates = 0;
  uint64_t mode_transitions = 0;
  uint64_t drift_demotions = 0;
  uint64_t repromotions = 0;
  uint64_t stability_promotions = 0;
  uint64_t exploit_escapes = 0;
  uint64_t card_corrections = 0;
  uint64_t wal_records = 0;
  uint64_t wal_append_failures = 0;
  uint64_t snapshots = 0;
  uint64_t snapshot_failures = 0;
  uint64_t plan_decode_failures = 0;
};

/// What Open() found on disk.
struct RecoveryInfo {
  bool opened = false;
  bool snapshot_loaded = false;
  bool snapshot_corrupt = false;
  bool wal_corrupt = false;
  uint64_t snapshot_lsn = 0;
  uint64_t snapshot_types = 0;
  uint64_t wal_frames_seen = 0;
  uint64_t wal_frames_replayed = 0;  ///< Frames past the LSN gate.
  uint64_t wal_torn_bytes = 0;
};

/// Read-only view of one type's durable state, for tests and tooling.
struct TypeView {
  uint64_t type_hash = 0;
  TypeMode mode = TypeMode::kLearn;
  bool exploit_from_drift = false;
  uint64_t serves = 0;
  uint64_t search_serves = 0;
  uint64_t exploit_run_len = 0;
  double ewma = 0.0;
  double baseline_mean = 0.0;
  int baseline_n = 0;
  int stable_run = 0;
  int healthy_run = 0;
  int exploit_bad_run = 0;
  uint64_t demotions = 0;
  bool has_best = false;
  double best_latency_ms = 0.0;
  uint64_t best_plan_hash = 0;
  size_t num_corrections = 0;
};

/// The serving decision for one query.
struct Decision {
  bool type_known = false;
  TypeMode mode = TypeMode::kLearn;
  /// True: skip search and execute `pinned` (exploit/frozen with a best
  /// plan). False: search normally.
  bool use_pinned = false;
  bool is_probe = false;
  plan::PartialPlan pinned;
  double pinned_latency_ms = 0.0;
};

class ExperienceStore : public featurize::CardCorrectionSource {
 public:
  explicit ExperienceStore(StoreOptions options);
  ~ExperienceStore() override;

  ExperienceStore(const ExperienceStore&) = delete;
  ExperienceStore& operator=(const ExperienceStore&) = delete;

  /// Mounts the durable state (see "Recovery invariant" above). kOk covers
  /// fresh stores and pure torn-tail losses; kDataLoss means corruption was
  /// detected (recovery proceeded degraded on the valid remainder — state
  /// is consistent, loss is reported, nothing invalid was loaded). Call
  /// once before use; in-memory stores (empty dir) always return kOk.
  util::Status Open();
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Mode consultation before planning. When use_pinned, `pinned.query` is
  /// set to `&query` and the plan is ready to execute.
  Decision Decide(const query::Query& query);

  /// Fetches the type's best-known plan regardless of mode (Decide only
  /// pins in exploit/frozen; this also serves learn-mode types). Used by
  /// the serving core's degradation ladder for no-search degraded serves.
  /// False when the type is unknown, has no best plan, or the stored bytes
  /// fail structural decode. On success `out->query` is set to `&query`.
  bool BestPlanFor(const query::Query& query, plan::PartialPlan* out,
                   double* latency_ms);

  /// Records one executed serve. `from_search`: the plan came from a live
  /// search (learn-mode serve), as opposed to a pinned/fallback plan.
  /// Complete searched plans that beat the type's best are captured as the
  /// new best. Drives the mode state machine; appends WAL frames.
  void RecordServe(const query::Query& query, const plan::PartialPlan& plan,
                   double latency_ms, bool from_search);

  /// Records one observed-vs-estimated cardinality pair for a relation
  /// subset of the query's type.
  void RecordCardCorrection(const query::Query& query, uint64_t rel_mask,
                            double estimated, double observed);

  // featurize::CardCorrectionSource:
  double CorrectionFor(const query::Query& query,
                       uint64_t rel_mask) const override;
  uint64_t epoch() const override { return epoch_; }

  /// fsyncs the WAL (the durability boundary) and snapshots when
  /// snapshot_every frames have accumulated.
  util::Status Sync();
  /// Forces a snapshot + WAL reset now.
  util::Status Snapshot();

  /// Manual mode control (logged as kMode frames). Freeze pins the current
  /// best plan permanently; both require the type to exist, and any mode
  /// needing a pin requires a best plan.
  util::Status Freeze(uint64_t type_hash);
  util::Status SetMode(uint64_t type_hash, TypeMode mode);

  StoreStats stats() const;
  size_t NumTypes() const;
  std::vector<TypeView> View() const;  ///< Sorted by type_hash.
  bool ViewOf(uint64_t type_hash, TypeView* out) const;

  /// Attaches the file-I/O fault sites (not owned; nullptr detaches).
  void SetFaultInjector(util::FaultInjector* injector);

  bool durable() const { return !options_.dir.empty(); }
  const StoreOptions& options() const { return options_; }
  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  struct Correction {
    double log_sum = 0.0;
    uint64_t n = 0;
    double published_mean = 0.0;  ///< log-mean at the last epoch bump.
  };

  struct TypeState {
    TypeMode mode = TypeMode::kLearn;
    bool exploit_from_drift = false;
    double ewma = 0.0;
    bool ewma_init = false;
    double baseline_sum = 0.0;
    int baseline_n = 0;
    uint64_t serves = 0;
    uint64_t search_serves = 0;
    uint64_t exploit_run_len = 0;
    int stable_run = 0;
    int healthy_run = 0;
    int exploit_bad_run = 0;
    uint64_t demotions = 0;
    bool has_best = false;
    double best_latency_ms = 0.0;
    uint64_t best_plan_hash = 0;
    std::vector<uint8_t> best_plan_bytes;
    /// Lazily decoded from best_plan_bytes at Decide() time (rel_masks are
    /// per-type-stable: all queries of a type share the relation set).
    plan::PartialPlan decoded_best;
    bool decoded_valid = false;
    std::unordered_map<uint64_t, Correction> corrections;
  };

  enum RecordType : uint32_t {
    kObservation = 1,
    kBestPlan = 2,
    kModeSet = 3,
    kCardCorrection = 4,
  };

  // The deterministic state machine (used live and in replay; see "Replay
  // determinism"). Callers hold mu_.
  void ApplyObservation(TypeState* t, double latency_ms, bool from_search,
                        bool improved);
  void ApplyBestPlan(TypeState* t, double latency_ms, uint64_t plan_hash,
                     std::vector<uint8_t> plan_bytes);
  void ApplyModeSet(TypeState* t, TypeMode mode);
  void ApplyCardCorrection(TypeState* t, uint64_t rel_mask, double log_ratio);

  void TransitionLocked(TypeState* t, TypeMode to, bool from_drift);
  double BaselineLocked(const TypeState& t) const;

  void AppendWalLocked(uint32_t type, const ByteWriter& payload);
  util::Status SnapshotLocked();
  util::Status ReplayWalLocked(uint64_t snapshot_lsn);
  void SerializeLocked(ByteWriter* out) const;
  util::Status DeserializeSnapshot(const std::vector<uint8_t>& bytes,
                                   uint64_t* last_lsn);
  TypeView ViewLocked(uint64_t hash, const TypeState& t) const;

  StoreOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TypeState> types_;
  StoreStats stats_;
  RecoveryInfo recovery_;
  WalWriter wal_;
  util::FaultInjector* injector_ = nullptr;  ///< Not owned; may be null.
  uint64_t next_lsn_ = 1;
  uint64_t frames_since_snapshot_ = 0;
  /// Correction-state version for search-cache invalidation (process-local).
  std::atomic<uint64_t> epoch_{0};
  /// True while Open() replays the WAL: Apply* skip process-lifetime stats
  /// so stats_ reflects live activity only.
  bool replaying_ = false;
  /// Latched when the injector's crash budget killed the emulated process:
  /// all further disk activity is silently skipped (state on disk stays
  /// frozen at the kill byte; the in-memory store keeps serving).
  bool io_dead_ = false;
  /// Latched when durable appends failed unrecoverably; the store degrades
  /// to in-memory operation.
  bool wal_degraded_ = false;
};

}  // namespace neo::store
