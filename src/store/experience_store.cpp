#include "src/store/experience_store.h"

#include <algorithm>
#include <cmath>

#include <errno.h>
#include <sys/stat.h>

#include "src/store/plan_codec.h"

namespace neo::store {

namespace {
constexpr uint8_t kFlagFromSearch = 1u << 0;
constexpr uint8_t kFlagImproved = 1u << 1;
constexpr double kCorrectionClamp = 1e4;  ///< Ratio clamp, both directions.
}  // namespace

const char* TypeModeName(TypeMode mode) {
  switch (mode) {
    case TypeMode::kLearn: return "learn";
    case TypeMode::kExploit: return "exploit";
    case TypeMode::kFrozen: return "frozen";
  }
  return "?";
}

ExperienceStore::ExperienceStore(StoreOptions options)
    : options_(std::move(options)) {}

ExperienceStore::~ExperienceStore() {
  std::lock_guard<std::mutex> lock(mu_);
  wal_.Close();
}

std::string ExperienceStore::wal_path() const { return options_.dir + "/wal.log"; }
std::string ExperienceStore::snapshot_path() const {
  return options_.dir + "/snapshot.bin";
}

void ExperienceStore::SetFaultInjector(util::FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
  wal_.SetFaultInjector(injector);
}

util::Status ExperienceStore::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_ = RecoveryInfo{};
  recovery_.opened = true;
  if (!durable()) return util::Status::Ok();

  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return util::Status::Internal("cannot create store dir: " + options_.dir);
  }

  // 1. Newest valid snapshot (rename-published, so it is whole or absent).
  uint64_t snapshot_lsn = 0;
  std::vector<uint8_t> snap_bytes;
  util::Status snap_read = ReadFileBytes(snapshot_path(), &snap_bytes);
  if (snap_read.ok()) {
    util::Status s = DeserializeSnapshot(snap_bytes, &snapshot_lsn);
    if (s.ok()) {
      recovery_.snapshot_loaded = true;
      recovery_.snapshot_lsn = snapshot_lsn;
      recovery_.snapshot_types = types_.size();
    } else {
      // Detected, never silently loaded: recover degraded from the WAL.
      recovery_.snapshot_corrupt = true;
      types_.clear();
      snapshot_lsn = 0;
    }
  }

  // 2. Longest valid WAL prefix, LSN-gated replay.
  util::Status replay = ReplayWalLocked(snapshot_lsn);

  const bool corrupt = recovery_.snapshot_corrupt || recovery_.wal_corrupt;
  if (!replay.ok()) return replay;
  return corrupt ? util::Status::DataLoss(
                       "experience store recovered degraded (corruption "
                       "detected; valid prefix loaded)")
                 : util::Status::Ok();
}

util::Status ExperienceStore::ReplayWalLocked(uint64_t snapshot_lsn) {
  WalReadResult wal;
  util::Status s = ReadWal(wal_path(), &wal);
  uint64_t valid_bytes = 0;
  if (s.ok() || s.code() == util::Status::Code::kDataLoss) {
    recovery_.wal_corrupt = wal.corruption;
    recovery_.wal_frames_seen = wal.records.size();
    recovery_.wal_torn_bytes = wal.torn_bytes;
    valid_bytes = wal.valid_bytes;
  } else if (s.code() == util::Status::Code::kNotFound) {
    valid_bytes = 0;  // fresh log
  } else {
    return s;
  }

  replaying_ = true;
  uint64_t max_lsn = snapshot_lsn;
  for (const WalRecord& rec : wal.records) {
    max_lsn = std::max(max_lsn, rec.lsn);
    if (rec.lsn <= snapshot_lsn) continue;  // already folded into snapshot
    ++recovery_.wal_frames_replayed;
    ByteReader r(rec.payload.data(), rec.payload.size());
    const uint64_t type_hash = r.GetU64();
    if (!r.ok()) continue;
    TypeState& t = types_[type_hash];
    switch (rec.type) {
      case kObservation: {
        const double latency = r.GetF64();
        const uint8_t flags = r.GetU8();
        if (r.ok()) {
          ApplyObservation(&t, latency, (flags & kFlagFromSearch) != 0,
                           (flags & kFlagImproved) != 0);
        }
        break;
      }
      case kBestPlan: {
        const double latency = r.GetF64();
        const uint64_t plan_hash = r.GetU64();
        const uint32_t len = r.GetU32();
        if (r.ok() && len <= rec.payload.size()) {
          std::vector<uint8_t> bytes(rec.payload.end() - len,
                                     rec.payload.end());
          ApplyBestPlan(&t, latency, plan_hash, std::move(bytes));
        }
        break;
      }
      case kModeSet: {
        const uint8_t mode = r.GetU8();
        if (r.ok() && mode <= static_cast<uint8_t>(TypeMode::kFrozen)) {
          ApplyModeSet(&t, static_cast<TypeMode>(mode));
        }
        break;
      }
      case kCardCorrection: {
        const uint64_t rel_mask = r.GetU64();
        const double log_ratio = r.GetF64();
        if (r.ok()) ApplyCardCorrection(&t, rel_mask, log_ratio);
        break;
      }
      default:
        break;  // unknown frame type from a future version: skip
    }
  }
  replaying_ = false;
  next_lsn_ = max_lsn + 1;
  frames_since_snapshot_ = recovery_.wal_frames_replayed;

  // 3. Truncate the torn/corrupt tail and resume appending after it.
  return wal_.Open(wal_path(), valid_bytes);
}

double ExperienceStore::BaselineLocked(const TypeState& t) const {
  return t.baseline_n > 0 ? t.baseline_sum / t.baseline_n : 0.0;
}

void ExperienceStore::TransitionLocked(TypeState* t, TypeMode to,
                                       bool from_drift) {
  if (t->mode == to) return;
  t->mode = to;
  t->exploit_from_drift = to == TypeMode::kExploit && from_drift;
  t->exploit_run_len = 0;
  t->healthy_run = 0;
  t->exploit_bad_run = 0;
  if (to == TypeMode::kLearn) t->stable_run = 0;
  if (!replaying_) ++stats_.mode_transitions;
}

void ExperienceStore::ApplyObservation(TypeState* t, double latency_ms,
                                       bool from_search, bool improved) {
  ++t->serves;
  if (!replaying_) ++stats_.observations;
  if (!t->ewma_init) {
    t->ewma = latency_ms;
    t->ewma_init = true;
  } else {
    const double a = options_.drift.ewma_alpha;
    t->ewma = a * latency_ms + (1.0 - a) * t->ewma;
  }
  if (t->baseline_n < options_.drift.baseline_window) {
    t->baseline_sum += latency_ms;
    ++t->baseline_n;
  }
  const double baseline = BaselineLocked(*t);
  const DriftOptions& d = options_.drift;

  switch (t->mode) {
    case TypeMode::kLearn: {
      if (from_search) {
        ++t->search_serves;
        if (!replaying_) ++stats_.search_serves;
        if (improved) {
          t->stable_run = 0;
        } else {
          ++t->stable_run;
        }
      }
      const bool baseline_ready = t->baseline_n >= d.baseline_window;
      if (baseline_ready && t->has_best && baseline > 0.0 &&
          t->ewma > d.demote_factor * baseline) {
        // Drift: the type is regressing — pin it to the best-known plan.
        ++t->demotions;
        if (!replaying_) ++stats_.drift_demotions;
        TransitionLocked(t, TypeMode::kExploit, /*from_drift=*/true);
      } else if (d.stable_streak > 0 && from_search && !improved &&
                 t->has_best && t->stable_run >= d.stable_streak) {
        // Stability: search keeps confirming the best plan — stop paying
        // for search.
        if (!replaying_) ++stats_.stability_promotions;
        TransitionLocked(t, TypeMode::kExploit, /*from_drift=*/false);
      }
      break;
    }
    case TypeMode::kExploit: {
      ++t->exploit_run_len;
      if (!replaying_) ++stats_.exploit_serves;
      const bool bad =
          baseline > 0.0 && latency_ms > d.demote_factor * baseline;
      t->exploit_bad_run = bad ? t->exploit_bad_run + 1 : 0;
      if (t->exploit_bad_run >= d.exploit_bad_streak) {
        // The pinned plan itself regressed: the old baseline no longer
        // describes this type. Re-learn against a fresh baseline (resetting
        // it also prevents an instant re-demotion on the next serve).
        t->baseline_sum = 0.0;
        t->baseline_n = 0;
        t->ewma_init = false;
        if (!replaying_) ++stats_.exploit_escapes;
        TransitionLocked(t, TypeMode::kLearn, /*from_drift=*/false);
      } else if (t->exploit_from_drift &&
                 d.probe_interval > 0 &&
                 t->exploit_run_len % d.probe_interval == 0) {
        if (!replaying_) ++stats_.probe_serves;
        const bool healthy =
            baseline > 0.0 && latency_ms <= d.healthy_factor * baseline;
        t->healthy_run = healthy ? t->healthy_run + 1 : 0;
        if (t->healthy_run >= d.healthy_probes) {
          if (!replaying_) ++stats_.repromotions;
          TransitionLocked(t, TypeMode::kLearn, /*from_drift=*/false);
        }
      }
      break;
    }
    case TypeMode::kFrozen:
      break;  // unreachable: frozen serves are not recorded (see RecordServe)
  }
}

void ExperienceStore::ApplyBestPlan(TypeState* t, double latency_ms,
                                    uint64_t plan_hash,
                                    std::vector<uint8_t> plan_bytes) {
  t->has_best = true;
  t->best_latency_ms = latency_ms;
  t->best_plan_hash = plan_hash;
  t->best_plan_bytes = std::move(plan_bytes);
  t->decoded_valid = false;
  t->decoded_best = plan::PartialPlan();
  t->stable_run = 0;
  if (!replaying_) ++stats_.best_updates;
}

void ExperienceStore::ApplyModeSet(TypeState* t, TypeMode mode) {
  TransitionLocked(t, mode, /*from_drift=*/false);
}

void ExperienceStore::ApplyCardCorrection(TypeState* t, uint64_t rel_mask,
                                          double log_ratio) {
  auto it = t->corrections.find(rel_mask);
  if (it == t->corrections.end()) {
    if (static_cast<int>(t->corrections.size()) >=
        options_.max_corrections_per_type) {
      return;
    }
    it = t->corrections.emplace(rel_mask, Correction{}).first;
  }
  Correction& c = it->second;
  c.log_sum += log_ratio;
  ++c.n;
  if (!replaying_) ++stats_.card_corrections;
  const double mean = c.log_sum / static_cast<double>(c.n);
  // Epoch bumps only on material movement so search caches are not
  // invalidated by every serve's jitter.
  if (std::fabs(mean - c.published_mean) > options_.epoch_min_delta) {
    c.published_mean = mean;
    if (!replaying_) epoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExperienceStore::AppendWalLocked(uint32_t type,
                                      const ByteWriter& payload) {
  if (!durable() || io_dead_ || wal_degraded_) return;
  const uint64_t lsn = next_lsn_++;
  util::Status s =
      wal_.AppendRecord(type, lsn, payload.bytes().data(), payload.size());
  if (wal_.crashed()) {
    io_dead_ = true;
    return;
  }
  if (!s.ok()) {
    ++stats_.wal_append_failures;
    // One recovery attempt: truncate back to the last good frame boundary
    // and retry the append. A second failure degrades to in-memory.
    if (wal_.Reset().ok() &&
        wal_.AppendRecord(type, lsn, payload.bytes().data(), payload.size())
            .ok()) {
      if (wal_.crashed()) {
        io_dead_ = true;
        return;
      }
    } else {
      wal_degraded_ = wal_.failed();
      if (wal_.crashed()) io_dead_ = true;
      return;
    }
  }
  ++stats_.wal_records;
  ++frames_since_snapshot_;
}

Decision ExperienceStore::Decide(const query::Query& query) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision d;
  auto it = types_.find(query.type_hash);
  if (it == types_.end()) return d;
  TypeState& t = it->second;
  d.type_known = true;
  d.mode = t.mode;
  if (t.mode == TypeMode::kLearn || !t.has_best) return d;

  if (!t.decoded_valid) {
    ByteReader r(t.best_plan_bytes.data(), t.best_plan_bytes.size());
    util::Status s = DecodePlan(&r, query, &t.decoded_best);
    if (!s.ok()) {
      // Checksummed bytes that still fail structural decode (e.g. a type-
      // hash collision across schemas): never serve them.
      ++stats_.plan_decode_failures;
      return d;
    }
    t.decoded_valid = true;
  }
  d.use_pinned = true;
  d.pinned = t.decoded_best;   // cheap: shared_ptr roots
  d.pinned.query = &query;
  d.pinned_latency_ms = t.best_latency_ms;
  d.is_probe = t.mode == TypeMode::kExploit && t.exploit_from_drift &&
               options_.drift.probe_interval > 0 &&
               (t.exploit_run_len + 1) % options_.drift.probe_interval == 0;
  return d;
}

bool ExperienceStore::BestPlanFor(const query::Query& query,
                                  plan::PartialPlan* out, double* latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(query.type_hash);
  if (it == types_.end() || !it->second.has_best) return false;
  TypeState& t = it->second;
  if (!t.decoded_valid) {
    ByteReader r(t.best_plan_bytes.data(), t.best_plan_bytes.size());
    util::Status s = DecodePlan(&r, query, &t.decoded_best);
    if (!s.ok()) {
      ++stats_.plan_decode_failures;
      return false;
    }
    t.decoded_valid = true;
  }
  *out = t.decoded_best;  // cheap: shared_ptr roots
  out->query = &query;
  if (latency_ms != nullptr) *latency_ms = t.best_latency_ms;
  return true;
}

void ExperienceStore::RecordServe(const query::Query& query,
                                  const plan::PartialPlan& plan,
                                  double latency_ms, bool from_search) {
  std::lock_guard<std::mutex> lock(mu_);
  TypeState& t = types_[query.type_hash];
  if (t.mode == TypeMode::kFrozen) {
    ++stats_.frozen_serves;  // pinned plan, no durable updates
    return;
  }
  const bool improved =
      t.mode == TypeMode::kLearn && from_search && plan.IsComplete() &&
      (!t.has_best || latency_ms < t.best_latency_ms);

  // WAL the raw inputs, then apply — replay re-runs the same machine in the
  // same order (see "Replay determinism" in the header).
  {
    ByteWriter payload;
    payload.PutU64(query.type_hash);
    payload.PutF64(latency_ms);
    payload.PutU8(static_cast<uint8_t>((from_search ? kFlagFromSearch : 0) |
                                       (improved ? kFlagImproved : 0)));
    AppendWalLocked(kObservation, payload);
  }
  ApplyObservation(&t, latency_ms, from_search, improved);

  if (improved) {
    ByteWriter plan_bytes;
    EncodePlan(plan, &plan_bytes);
    const uint64_t plan_hash = plan.Hash();
    ByteWriter payload;
    payload.PutU64(query.type_hash);
    payload.PutF64(latency_ms);
    payload.PutU64(plan_hash);
    payload.PutU32(static_cast<uint32_t>(plan_bytes.size()));
    payload.PutBytes(plan_bytes.bytes().data(), plan_bytes.size());
    AppendWalLocked(kBestPlan, payload);
    std::vector<uint8_t> bytes = plan_bytes.bytes();
    ApplyBestPlan(&t, latency_ms, plan_hash, std::move(bytes));
    // We hold the live plan: prime the decode cache for Decide().
    t.decoded_best = plan;
    t.decoded_valid = true;
  }
}

void ExperienceStore::RecordCardCorrection(const query::Query& query,
                                           uint64_t rel_mask,
                                           double estimated,
                                           double observed) {
  if (!(estimated > 0.0) || !(observed >= 0.0)) return;
  const double ratio = std::min(
      kCorrectionClamp, std::max(1.0 / kCorrectionClamp,
                                 std::max(observed, 1e-6) / estimated));
  const double log_ratio = std::log(ratio);
  std::lock_guard<std::mutex> lock(mu_);
  TypeState& t = types_[query.type_hash];
  if (t.mode == TypeMode::kFrozen) return;
  ByteWriter payload;
  payload.PutU64(query.type_hash);
  payload.PutU64(rel_mask);
  payload.PutF64(log_ratio);
  AppendWalLocked(kCardCorrection, payload);
  ApplyCardCorrection(&t, rel_mask, log_ratio);
}

double ExperienceStore::CorrectionFor(const query::Query& query,
                                      uint64_t rel_mask) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(query.type_hash);
  if (it == types_.end()) return 1.0;
  auto cit = it->second.corrections.find(rel_mask);
  if (cit == it->second.corrections.end() || cit->second.n == 0) return 1.0;
  // Serve the *published* mean, not the running one: encodings only change
  // when the epoch does, keeping cached search results coherent.
  return std::exp(cit->second.published_mean);
}

util::Status ExperienceStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!durable() || io_dead_) return util::Status::Ok();
  util::Status s = wal_.Sync();
  if (wal_.crashed()) {
    io_dead_ = true;
    return util::Status::Ok();
  }
  if (options_.snapshot_every > 0 &&
      frames_since_snapshot_ >=
          static_cast<uint64_t>(options_.snapshot_every)) {
    util::Status snap = SnapshotLocked();
    if (!snap.ok()) return snap;
  }
  return s;
}

util::Status ExperienceStore::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!durable() || io_dead_) return util::Status::Ok();
  return SnapshotLocked();
}

void ExperienceStore::SerializeLocked(ByteWriter* out) const {
  out->PutU32(kSnapshotMagic);
  out->PutU32(kSnapshotVersion);
  out->PutU64(next_lsn_ - 1);  // last LSN folded into this snapshot
  // Deterministic order so identical states write identical bytes.
  std::vector<uint64_t> hashes;
  hashes.reserve(types_.size());
  for (const auto& [hash, t] : types_) hashes.push_back(hash);
  std::sort(hashes.begin(), hashes.end());
  out->PutU64(hashes.size());
  for (uint64_t hash : hashes) {
    const TypeState& t = types_.at(hash);
    out->PutU64(hash);
    out->PutU8(static_cast<uint8_t>(t.mode));
    out->PutU8(t.exploit_from_drift ? 1 : 0);
    out->PutF64(t.ewma);
    out->PutU8(t.ewma_init ? 1 : 0);
    out->PutF64(t.baseline_sum);
    out->PutI32(t.baseline_n);
    out->PutU64(t.serves);
    out->PutU64(t.search_serves);
    out->PutU64(t.exploit_run_len);
    out->PutI32(t.stable_run);
    out->PutI32(t.healthy_run);
    out->PutI32(t.exploit_bad_run);
    out->PutU64(t.demotions);
    out->PutU8(t.has_best ? 1 : 0);
    out->PutF64(t.best_latency_ms);
    out->PutU64(t.best_plan_hash);
    out->PutU32(static_cast<uint32_t>(t.best_plan_bytes.size()));
    out->PutBytes(t.best_plan_bytes.data(), t.best_plan_bytes.size());
    std::vector<uint64_t> masks;
    masks.reserve(t.corrections.size());
    for (const auto& [mask, c] : t.corrections) masks.push_back(mask);
    std::sort(masks.begin(), masks.end());
    out->PutU32(static_cast<uint32_t>(masks.size()));
    for (uint64_t mask : masks) {
      const Correction& c = t.corrections.at(mask);
      out->PutU64(mask);
      out->PutF64(c.log_sum);
      out->PutU64(c.n);
      out->PutF64(c.published_mean);
    }
  }
  out->PutU64(Fnv1a(out->bytes().data(), out->size()));
}

util::Status ExperienceStore::DeserializeSnapshot(
    const std::vector<uint8_t>& bytes, uint64_t* last_lsn) {
  if (bytes.size() < 8 + 8) {
    return util::Status::DataLoss("snapshot too short");
  }
  const uint64_t expect = Fnv1a(bytes.data(), bytes.size() - 8);
  ByteReader tail(bytes.data() + bytes.size() - 8, 8);
  if (tail.GetU64() != expect) {
    return util::Status::DataLoss("snapshot checksum mismatch");
  }
  ByteReader r(bytes.data(), bytes.size() - 8);
  if (r.GetU32() != kSnapshotMagic) {
    return util::Status::DataLoss("bad snapshot magic");
  }
  if (r.GetU32() != kSnapshotVersion) {
    return util::Status::DataLoss("unsupported snapshot version");
  }
  *last_lsn = r.GetU64();
  const uint64_t num_types = r.GetU64();
  if (!r.ok() || num_types > (1u << 24)) {
    return util::Status::DataLoss("bad snapshot type count");
  }
  types_.clear();
  for (uint64_t i = 0; i < num_types; ++i) {
    const uint64_t hash = r.GetU64();
    TypeState t;
    const uint8_t mode = r.GetU8();
    if (mode > static_cast<uint8_t>(TypeMode::kFrozen)) {
      return util::Status::DataLoss("bad mode in snapshot");
    }
    t.mode = static_cast<TypeMode>(mode);
    t.exploit_from_drift = r.GetU8() != 0;
    t.ewma = r.GetF64();
    t.ewma_init = r.GetU8() != 0;
    t.baseline_sum = r.GetF64();
    t.baseline_n = r.GetI32();
    t.serves = r.GetU64();
    t.search_serves = r.GetU64();
    t.exploit_run_len = r.GetU64();
    t.stable_run = r.GetI32();
    t.healthy_run = r.GetI32();
    t.exploit_bad_run = r.GetI32();
    t.demotions = r.GetU64();
    t.has_best = r.GetU8() != 0;
    t.best_latency_ms = r.GetF64();
    t.best_plan_hash = r.GetU64();
    const uint32_t plan_len = r.GetU32();
    if (!r.ok() || plan_len > kMaxPayloadLen || plan_len > r.remaining()) {
      return util::Status::DataLoss("bad plan bytes in snapshot");
    }
    t.best_plan_bytes.resize(plan_len);
    for (uint32_t b = 0; b < plan_len; ++b) t.best_plan_bytes[b] = r.GetU8();
    const uint32_t num_corr = r.GetU32();
    if (!r.ok() || num_corr > (1u << 20)) {
      return util::Status::DataLoss("bad correction count in snapshot");
    }
    for (uint32_t c = 0; c < num_corr; ++c) {
      const uint64_t mask = r.GetU64();
      Correction corr;
      corr.log_sum = r.GetF64();
      corr.n = r.GetU64();
      corr.published_mean = r.GetF64();
      t.corrections[mask] = corr;
    }
    if (!r.ok()) return util::Status::DataLoss("truncated snapshot record");
    types_[hash] = std::move(t);
  }
  return util::Status::Ok();
}

util::Status ExperienceStore::SnapshotLocked() {
  ByteWriter snap;
  SerializeLocked(&snap);
  bool crashed = io_dead_;
  util::Status s =
      AtomicWriteFile(snapshot_path(), snap.bytes().data(), snap.size(),
                      injector_, Fnv1a(options_.dir.data(), options_.dir.size()),
                      &crashed);
  if (crashed) {
    // The emulated process died mid-publish: the rename never happened and
    // nothing after this point may touch disk (in particular, the WAL must
    // NOT be reset — its frames are still the only durable copy).
    io_dead_ = true;
    return util::Status::Ok();
  }
  if (!s.ok()) {
    ++stats_.snapshot_failures;
    return s;  // WAL untouched; every frame still replayable
  }
  ++stats_.snapshots;
  frames_since_snapshot_ = 0;
  // Frames folded into the snapshot are now redundant (their LSNs are
  // <= last_lsn), so start a fresh log. A crash before/after this point is
  // covered by the LSN gate either way.
  return wal_.Open(wal_path(), 0);
}

util::Status ExperienceStore::Freeze(uint64_t type_hash) {
  return SetMode(type_hash, TypeMode::kFrozen);
}

util::Status ExperienceStore::SetMode(uint64_t type_hash, TypeMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(type_hash);
  if (it == types_.end()) {
    return util::Status::NotFound("unknown query type");
  }
  if (mode != TypeMode::kLearn && !it->second.has_best) {
    return util::Status::FailedPrecondition(
        "mode needs a pinned plan but no best plan is known");
  }
  ByteWriter payload;
  payload.PutU64(type_hash);
  payload.PutU8(static_cast<uint8_t>(mode));
  AppendWalLocked(kModeSet, payload);
  ApplyModeSet(&it->second, mode);
  return util::Status::Ok();
}

StoreStats ExperienceStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ExperienceStore::NumTypes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return types_.size();
}

TypeView ExperienceStore::ViewLocked(uint64_t hash,
                                     const TypeState& t) const {
  TypeView v;
  v.type_hash = hash;
  v.mode = t.mode;
  v.exploit_from_drift = t.exploit_from_drift;
  v.serves = t.serves;
  v.search_serves = t.search_serves;
  v.exploit_run_len = t.exploit_run_len;
  v.ewma = t.ewma;
  v.baseline_mean = BaselineLocked(t);
  v.baseline_n = t.baseline_n;
  v.stable_run = t.stable_run;
  v.healthy_run = t.healthy_run;
  v.exploit_bad_run = t.exploit_bad_run;
  v.demotions = t.demotions;
  v.has_best = t.has_best;
  v.best_latency_ms = t.best_latency_ms;
  v.best_plan_hash = t.best_plan_hash;
  v.num_corrections = t.corrections.size();
  return v;
}

std::vector<TypeView> ExperienceStore::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TypeView> out;
  out.reserve(types_.size());
  for (const auto& [hash, t] : types_) out.push_back(ViewLocked(hash, t));
  std::sort(out.begin(), out.end(),
            [](const TypeView& a, const TypeView& b) {
              return a.type_hash < b.type_hash;
            });
  return out;
}

bool ExperienceStore::ViewOf(uint64_t type_hash, TypeView* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(type_hash);
  if (it == types_.end()) return false;
  *out = ViewLocked(type_hash, it->second);
  return true;
}

}  // namespace neo::store
