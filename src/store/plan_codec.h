// Serialization for execution plans persisted by the experience store
// (best-known plan per query type). A plan is encoded structurally —
// preorder operator/table walk, no rel_masks — because masks are positions
// within Query::relations and are re-derived at decode time against the live
// query object. Decode validates everything it reads (operator ranges, table
// membership, mask disjointness) and returns kDataLoss instead of aborting,
// so a corrupted-but-checksum-colliding payload can never take the process
// down.
#pragma once

#include <vector>

#include "src/plan/plan.h"
#include "src/store/store_file.h"
#include "src/util/status.h"

namespace neo::store {

/// Appends the encoding of `plan` (a forest; typically one complete tree)
/// to `out`.
void EncodePlan(const plan::PartialPlan& plan, ByteWriter* out);

/// Decodes a plan for `query` from `in`. On success `*out` has its query
/// pointer set to `&query` and rel_masks rebuilt from the query's relation
/// order.
util::Status DecodePlan(ByteReader* in, const query::Query& query,
                        plan::PartialPlan* out);

}  // namespace neo::store
