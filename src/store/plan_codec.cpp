#include "src/store/plan_codec.h"

namespace neo::store {

namespace {

void EncodeNode(const plan::PlanNode& node, ByteWriter* out) {
  out->PutU8(node.is_join ? 1 : 0);
  if (node.is_join) {
    out->PutU8(static_cast<uint8_t>(node.join_op));
    EncodeNode(*node.left, out);
    EncodeNode(*node.right, out);
  } else {
    out->PutU8(static_cast<uint8_t>(node.scan_op));
    out->PutI32(node.table_id);
  }
}

util::Status DecodeNode(ByteReader* in, const query::Query& query, int depth,
                        plan::NodeRef* out) {
  if (depth > 64) return util::Status::DataLoss("plan nesting too deep");
  const uint8_t is_join = in->GetU8();
  if (!in->ok()) return util::Status::DataLoss("plan payload truncated");
  if (is_join != 0) {
    const uint8_t op = in->GetU8();
    if (!in->ok() || op >= static_cast<uint8_t>(plan::kNumJoinOps)) {
      return util::Status::DataLoss("bad join operator in plan payload");
    }
    plan::NodeRef left, right;
    util::Status s = DecodeNode(in, query, depth + 1, &left);
    if (!s.ok()) return s;
    s = DecodeNode(in, query, depth + 1, &right);
    if (!s.ok()) return s;
    if ((left->rel_mask & right->rel_mask) != 0) {
      return util::Status::DataLoss("overlapping join children in payload");
    }
    *out = plan::MakeJoin(static_cast<plan::JoinOp>(op), std::move(left),
                          std::move(right));
    return util::Status::Ok();
  }
  const uint8_t op = in->GetU8();
  const int32_t table_id = in->GetI32();
  if (!in->ok() || op > static_cast<uint8_t>(plan::ScanOp::kUnspecified)) {
    return util::Status::DataLoss("bad scan operator in plan payload");
  }
  const int idx = query.RelationIndex(table_id);
  if (idx < 0) {
    return util::Status::DataLoss("plan references a table outside the query");
  }
  *out = plan::MakeScan(static_cast<plan::ScanOp>(op), table_id, 1ULL << idx);
  return util::Status::Ok();
}

}  // namespace

void EncodePlan(const plan::PartialPlan& plan, ByteWriter* out) {
  out->PutU32(static_cast<uint32_t>(plan.roots.size()));
  for (const auto& root : plan.roots) EncodeNode(*root, out);
}

util::Status DecodePlan(ByteReader* in, const query::Query& query,
                        plan::PartialPlan* out) {
  const uint32_t num_roots = in->GetU32();
  if (!in->ok() || num_roots > 64) {
    return util::Status::DataLoss("bad plan root count");
  }
  out->query = &query;
  out->roots.clear();
  out->roots.reserve(num_roots);
  uint64_t covered = 0;
  for (uint32_t i = 0; i < num_roots; ++i) {
    plan::NodeRef root;
    util::Status s = DecodeNode(in, query, 0, &root);
    if (!s.ok()) return s;
    if ((covered & root->rel_mask) != 0) {
      return util::Status::DataLoss("overlapping plan roots in payload");
    }
    covered |= root->rel_mask;
    out->roots.push_back(std::move(root));
  }
  return util::Status::Ok();
}

}  // namespace neo::store
