// On-disk primitives for the experience store: checksummed byte buffers, an
// append-only WAL writer/reader with per-record framing, and atomic
// whole-file publication. All formats follow the PR-6 weight-checkpoint
// discipline — magic, version, FNV-1a checksum, util::Status on every
// fallible path — and every write funnels through the (optional) attached
// util::FaultInjector's file-I/O sites so recovery is exercised under the CI
// fault matrix.
//
// WAL frame layout (after an 8-byte file header of magic 'NEOL' + version):
//
//   [u32 payload_len][u32 record_type][u64 lsn][payload][u64 fnv1a]
//
// where the checksum covers every preceding byte of the frame. A reader
// accepts the longest valid prefix: a frame cut short at EOF is a *torn
// tail* (normal crash debris — silently dropped, at most the unsynced suffix
// is lost), while a full-length frame whose checksum mismatches is
// *corruption* (reported as kDataLoss, never silently loaded). Appending
// after recovery first truncates the file to the valid prefix so old torn
// bytes can never be misparsed as the start of a new record.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/fault_injector.h"
#include "src/util/status.h"

namespace neo::store {

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Chainable FNV-1a over a byte range (pass the previous return value as `h`
/// to extend a running checksum).
uint64_t Fnv1a(const void* data, size_t n, uint64_t h = kFnvOffsetBasis);

/// Little-endian append-only serializer into a growable byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF64(double v);
  void PutBytes(const void* data, size_t n);
  /// Length-prefixed (u32) string.
  void PutString(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range. Any read
/// past the end latches ok() to false and returns zeros; callers check ok()
/// once after a parse instead of after every field.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  double GetF64();
  std::string GetString();

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(size_t n);
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Reads a whole file into `out`. kNotFound if the file does not exist.
util::Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Publishes `n` bytes at `path` atomically: write to `path + ".tmp"`, flush
/// + fsync, rename over the target. Readers therefore see either the old
/// complete file or the new complete file, never a partial write. The
/// attached injector (nullable) can fail the write (EIO), tear it (short
/// write), or cut it at the crash budget; on any injected or real failure
/// the tmp file is removed and the old file is left intact. A crash-budget
/// cut returns Ok — the emulated process died believing the write landed —
/// but sets `*crashed` (when non-null) so the store can stop touching disk,
/// exactly as a killed process would.
util::Status AtomicWriteFile(const std::string& path, const void* data,
                             size_t n, util::FaultInjector* injector,
                             uint64_t file_key, bool* crashed = nullptr);

struct WalRecord {
  uint32_t type = 0;
  uint64_t lsn = 0;
  std::vector<uint8_t> payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte length of the longest valid prefix (header + whole valid frames).
  /// Appenders must truncate the file to this before writing.
  uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix that parse as an incomplete final frame
  /// (torn tail; expected crash debris).
  uint64_t torn_bytes = 0;
  /// True if a *complete* frame failed its checksum (bit rot, not a crash).
  bool corruption = false;
};

/// Parses the longest valid prefix of the WAL at `path` into `result`.
/// kNotFound: no file (fresh store). kOk: every frame valid, or only a torn
/// tail dropped. kDataLoss: bad header, or a complete frame failed its
/// checksum — `result` still holds the valid prefix so the caller can mount
/// a degraded (but never silently wrong) recovery.
util::Status ReadWal(const std::string& path, WalReadResult* result);

/// Appender for the WAL format above. Not thread-safe; the store serializes.
class WalWriter {
 public:
  ~WalWriter() { Close(); }

  /// Opens `path` for appending at offset `valid_bytes` (from ReadWal; pass
  /// 0 to create/overwrite with a fresh header). The file is truncated to
  /// that offset first so stale torn bytes are unreachable.
  util::Status Open(const std::string& path, uint64_t valid_bytes);

  /// Appends one frame. After an injected or real write failure the writer
  /// latches failed() and every subsequent append returns
  /// kFailedPrecondition until Reset(); the bytes on disk up to the last
  /// successful Sync() remain a valid prefix.
  util::Status AppendRecord(uint32_t type, uint64_t lsn, const void* payload,
                            size_t payload_len);

  /// fflush + fsync. Durability boundary: frames appended before a
  /// successful Sync survive any later crash.
  util::Status Sync();

  /// Recovers from a latched failure: re-truncates the file to the last
  /// known-good frame boundary and reopens for append.
  util::Status Reset();

  void Close();

  bool failed() const { return failed_; }
  /// True once the injector's crash budget cut a write: the emulated process
  /// is dead past that byte, so every later operation on this writer is a
  /// silent no-op (no writes, no truncation, no fsync) and the on-disk state
  /// stays frozen at the kill point until a fresh writer recovers it.
  bool crashed() const { return crashed_; }
  /// Known-good byte length (every frame up to here fully landed).
  uint64_t good_bytes() const { return good_bytes_; }

  void SetFaultInjector(util::FaultInjector* injector) { injector_ = injector; }

 private:
  /// Writes through the injector's short-write / EIO / crash-budget sites.
  /// A crash-budget drop returns ok (the "process" believes the write
  /// landed — exactly what a kill does); short write and EIO return errors.
  util::Status InjectedWrite(const void* data, size_t n);

  std::FILE* f_ = nullptr;
  std::string path_;
  uint64_t good_bytes_ = 0;
  uint64_t pending_bytes_ = 0;  ///< Appended since the last Sync.
  bool failed_ = false;
  bool crashed_ = false;
  util::FaultInjector* injector_ = nullptr;
  uint64_t file_key_ = 0;
  /// Cumulative bytes this writer has attempted; compared against the
  /// injector's crash budget (io_truncate_at).
  uint64_t lifetime_bytes_ = 0;
};

inline constexpr uint32_t kWalMagic = 0x4c4f454eu;       // "NEOL"
inline constexpr uint32_t kSnapshotMagic = 0x544f454eu;  // "NEOT"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr uint32_t kSnapshotVersion = 1;
/// Sanity cap on a frame's payload length; anything larger is treated as
/// corruption, not an allocation request.
inline constexpr uint32_t kMaxPayloadLen = 16u << 20;

}  // namespace neo::store
