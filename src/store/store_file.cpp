#include "src/store/store_file.h"

#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

namespace neo::store {

uint64_t Fnv1a(const void* data, size_t n, uint64_t h) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void ByteWriter::PutU32(uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  buf_.insert(buf_.end(), b, b + 4);
}

void ByteWriter::PutU64(uint64_t v) {
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  buf_.insert(buf_.end(), b, b + 8);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits);
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

bool ByteReader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::GetU8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t ByteReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

double ByteReader::GetF64() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string ByteReader::GetString() {
  const uint32_t n = GetU32();
  if (!Need(n)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

util::Status ReadFileBytes(const std::string& path,
                           std::vector<uint8_t>* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::Status::NotFound("no file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return util::Status::Internal("ftell failed: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(out->data(), 1, out->size(), f) != out->size()) {
    std::fclose(f);
    return util::Status::Internal("short read: " + path);
  }
  std::fclose(f);
  return util::Status::Ok();
}

util::Status AtomicWriteFile(const std::string& path, const void* data,
                             size_t n, util::FaultInjector* injector,
                             uint64_t file_key, bool* crashed_out) {
  if (crashed_out != nullptr && *crashed_out) return util::Status::Ok();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return util::Status::Internal("cannot create: " + tmp);

  size_t landing = n;
  bool crashed = false;
  if (injector != nullptr && injector->enabled()) {
    if (injector->DrawIoFailure(file_key)) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return util::Status::Internal("injected EIO writing " + tmp);
    }
    const size_t short_len = injector->PerturbWriteLength(file_key, n);
    if (short_len < n) {
      // A detected short write: the writer *sees* fwrite return short, so it
      // aborts the publish and the old file stays authoritative.
      std::fclose(f);
      std::remove(tmp.c_str());
      return util::Status::Internal("injected short write on " + tmp);
    }
    const size_t budget = injector->ConsumeIoBudget(n);
    if (budget < n) {
      // Crash emulation: a prefix lands in the tmp file, the rename never
      // happens, and (like a real kill) the caller is told nothing went
      // wrong. Recovery must come up from the previous published file.
      landing = budget;
      crashed = true;
    }
  }

  if (landing > 0 && std::fwrite(data, 1, landing, f) != landing) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return util::Status::Internal("short write: " + tmp);
  }
  if (crashed) {
    std::fclose(f);
    if (crashed_out != nullptr) *crashed_out = true;
    return util::Status::Ok();
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return util::Status::Internal("fflush failed: " + tmp);
  }
  ::fsync(::fileno(f));
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::Internal("rename failed: " + path);
  }
  return util::Status::Ok();
}

util::Status ReadWal(const std::string& path, WalReadResult* result) {
  result->records.clear();
  result->valid_bytes = 0;
  result->torn_bytes = 0;
  result->corruption = false;

  std::vector<uint8_t> bytes;
  util::Status s = ReadFileBytes(path, &bytes);
  if (!s.ok()) return s;

  // A file shorter than the header is a torn initial header write (crash
  // during creation): recover as an empty log, not as corruption.
  if (bytes.size() < 8) {
    result->torn_bytes = bytes.size();
    return util::Status::Ok();
  }
  ByteReader header(bytes.data(), 8);
  const uint32_t magic = header.GetU32();
  const uint32_t version = header.GetU32();
  if (magic != kWalMagic) {
    return util::Status::DataLoss("bad WAL magic in " + path);
  }
  if (version != kWalVersion) {
    return util::Status::DataLoss("unsupported WAL version in " + path);
  }
  result->valid_bytes = 8;

  size_t pos = 8;
  constexpr size_t kFrameOverhead = 4 + 4 + 8 + 8;  // len + type + lsn + fnv
  while (pos < bytes.size()) {
    const size_t left = bytes.size() - pos;
    if (left < 4) break;  // torn: not even a length field
    uint32_t payload_len;
    std::memcpy(&payload_len, bytes.data() + pos, 4);
    if (payload_len > kMaxPayloadLen) {
      // A length this large never came from the writer: bit rot in the
      // length field itself. Corruption, not a torn tail.
      result->corruption = true;
      break;
    }
    const size_t frame_len = kFrameOverhead + payload_len;
    if (left < frame_len) break;  // torn final frame
    const size_t body_len = frame_len - 8;
    const uint64_t expect = Fnv1a(bytes.data() + pos, body_len);
    uint64_t stored;
    std::memcpy(&stored, bytes.data() + pos + body_len, 8);
    if (stored != expect) {
      result->corruption = true;
      break;
    }
    WalRecord rec;
    ByteReader r(bytes.data() + pos + 4, 4 + 8);
    rec.type = r.GetU32();
    rec.lsn = r.GetU64();
    rec.payload.assign(bytes.data() + pos + 16,
                       bytes.data() + pos + 16 + payload_len);
    result->records.push_back(std::move(rec));
    pos += frame_len;
    result->valid_bytes = pos;
  }
  if (result->corruption) {
    return util::Status::DataLoss("WAL record failed checksum in " + path +
                                  " (valid prefix kept)");
  }
  result->torn_bytes = bytes.size() - result->valid_bytes;
  return util::Status::Ok();
}

util::Status WalWriter::Open(const std::string& path, uint64_t valid_bytes) {
  if (crashed_) return util::Status::Ok();  // dead process: no disk effects
  Close();
  path_ = path;
  file_key_ = Fnv1a(path.data(), path.size());
  failed_ = false;
  pending_bytes_ = 0;

  if (valid_bytes < 8) {
    // Fresh log (or a torn header): start over with a clean header.
    f_ = std::fopen(path.c_str(), "wb");
    if (f_ == nullptr) return util::Status::Internal("cannot create: " + path);
    ByteWriter header;
    header.PutU32(kWalMagic);
    header.PutU32(kWalVersion);
    good_bytes_ = 0;
    util::Status s = InjectedWrite(header.bytes().data(), header.size());
    if (!s.ok()) return s;
    good_bytes_ = 8;
    return Sync();
  }

  // Drop any torn tail before appending: a new frame written after garbage
  // would be unreachable to recovery (the parse stops at the garbage).
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return util::Status::Internal("truncate failed: " + path);
  }
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) return util::Status::Internal("cannot append: " + path);
  good_bytes_ = valid_bytes;
  return util::Status::Ok();
}

util::Status WalWriter::InjectedWrite(const void* data, size_t n) {
  if (crashed_) return util::Status::Ok();
  if (failed_) {
    return util::Status::FailedPrecondition("WAL writer is failed; Reset()");
  }
  if (f_ == nullptr) {
    return util::Status::FailedPrecondition("WAL writer is not open");
  }
  size_t landing = n;
  bool crashed = false;
  if (injector_ != nullptr && injector_->enabled()) {
    if (injector_->DrawIoFailure(file_key_)) {
      failed_ = true;
      return util::Status::Internal("injected EIO on " + path_);
    }
    const size_t short_len = injector_->PerturbWriteLength(file_key_, n);
    if (short_len < n) {
      // Detected short write: land the prefix (torn frame on disk), latch
      // failed; Reset() truncates back to the last good boundary.
      if (short_len > 0) std::fwrite(data, 1, short_len, f_);
      std::fflush(f_);
      failed_ = true;
      return util::Status::DataLoss("injected short write on " + path_);
    }
    const size_t budget = injector_->ConsumeIoBudget(n);
    if (budget < n) {
      // Silent: the "process" believes the bytes landed but dies here; the
      // crashed latch freezes the file at this exact byte.
      landing = budget;
      crashed_ = true;
    }
  }
  if (landing > 0 && std::fwrite(data, 1, landing, f_) != landing) {
    failed_ = true;
    return util::Status::Internal("fwrite failed: " + path_);
  }
  if (crashed_) std::fflush(f_);
  return util::Status::Ok();
}

util::Status WalWriter::AppendRecord(uint32_t type, uint64_t lsn,
                                     const void* payload,
                                     size_t payload_len) {
  NEO_CHECK(payload_len <= kMaxPayloadLen);
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload_len));
  frame.PutU32(type);
  frame.PutU64(lsn);
  frame.PutBytes(payload, payload_len);
  frame.PutU64(Fnv1a(frame.bytes().data(), frame.size()));
  util::Status s = InjectedWrite(frame.bytes().data(), frame.size());
  if (!s.ok()) return s;
  good_bytes_ += frame.size();
  pending_bytes_ += frame.size();
  return util::Status::Ok();
}

util::Status WalWriter::Sync() {
  if (crashed_) return util::Status::Ok();
  if (failed_) {
    return util::Status::FailedPrecondition("WAL writer is failed; Reset()");
  }
  if (f_ == nullptr) {
    return util::Status::FailedPrecondition("WAL writer is not open");
  }
  if (std::fflush(f_) != 0) {
    failed_ = true;
    return util::Status::Internal("fflush failed: " + path_);
  }
  ::fsync(::fileno(f_));
  pending_bytes_ = 0;
  return util::Status::Ok();
}

util::Status WalWriter::Reset() {
  if (crashed_) return util::Status::Ok();
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  failed_ = false;
  // Re-truncate to the last boundary every byte of which landed, dropping
  // the torn frame a short write left behind, then resume appending.
  const std::string path = path_;
  return Open(path, good_bytes_);
}

void WalWriter::Close() {
  if (f_ != nullptr) {
    if (!failed_ && !crashed_) {
      std::fflush(f_);
      ::fsync(::fileno(f_));
    }
    std::fclose(f_);
    f_ = nullptr;
  }
}

}  // namespace neo::store
