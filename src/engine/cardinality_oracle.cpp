#include "src/engine/cardinality_oracle.h"

#include <functional>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::engine {

size_t CardinalityOracle::QueryKeyHash::operator()(const QueryKey& k) const {
  return static_cast<size_t>(util::HashCombine(k.fingerprint, k.mask));
}

const Selection& CardinalityOracle::CachedSelection(const query::Query& query,
                                                    int table_id) {
  const int pos = query.RelationIndex(table_id);
  NEO_CHECK(pos >= 0);
  const QueryKey key{query.fingerprint, 1ULL << pos};
  auto it = selection_cache_.find(key);
  if (it != selection_cache_.end()) return it->second;
  Selection sel = EvaluatePredicates(db_, schema_, query, table_id);
  return selection_cache_.emplace(key, std::move(sel)).first->second;
}

double CardinalityOracle::BaseCardinality(const query::Query& query, int table_id) {
  return static_cast<double>(CachedSelection(query, table_id).count);
}

size_t CardinalityOracle::TableRows(int table_id) const {
  return db_.table(schema_.table(table_id).name).num_rows();
}

double CardinalityOracle::PredicateSelectivity(const query::Query& query,
                                               int table_id) {
  const size_t rows = TableRows(table_id);
  if (rows == 0) return 0.0;
  return BaseCardinality(query, table_id) / static_cast<double>(rows);
}

double CardinalityOracle::Cardinality(const query::Query& query, uint64_t mask) {
  NEO_CHECK(mask != 0);
  const QueryKey key{query.fingerprint, mask};
  auto it = subset_cache_.find(key);
  if (it != subset_cache_.end()) return it->second;
  const double result = ComputeSubset(query, mask);
  subset_cache_.emplace(key, result);
  return result;
}

double CardinalityOracle::ComputeSubset(const query::Query& query, uint64_t mask) {
  // Collect relation positions in the subset.
  std::vector<int> members;
  for (size_t i = 0; i < query.relations.size(); ++i) {
    if (mask & (1ULL << i)) members.push_back(static_cast<int>(i));
  }
  if (members.size() == 1) {
    return BaseCardinality(query, query.relations[static_cast<size_t>(members[0])]);
  }
  NEO_CHECK_MSG(query.SubsetConnected(mask), "oracle: disconnected subset");

  // Build the tree structure over subset members. Multiple edges between the
  // same pair are combined into a composite key.
  struct TreeEdge {
    int parent_pos;  ///< position within `members`
    int child_pos;
    std::vector<std::pair<int, int>> key_cols;  ///< (parent col, child col)
  };

  const int n = static_cast<int>(members.size());
  auto member_index = [&](int rel_pos) {
    for (int i = 0; i < n; ++i) {
      if (members[static_cast<size_t>(i)] == rel_pos) return i;
    }
    return -1;
  };

  // Adjacency via join edges restricted to the subset.
  std::vector<std::vector<TreeEdge>> children(static_cast<size_t>(n));
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<int> order;  // BFS order, parents before children
  std::vector<int> stack{0};
  visited[0] = true;
  std::vector<std::pair<int, int>> parent_of(static_cast<size_t>(n), {-1, -1});
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    const int cur_table = query.relations[static_cast<size_t>(members[static_cast<size_t>(cur)])];
    for (const query::JoinEdge& j : query.joins) {
      if (!j.Touches(cur_table)) continue;
      const int other_table = j.left_table == cur_table ? j.right_table : j.left_table;
      const int other_rel_pos = query.RelationIndex(other_table);
      if (other_rel_pos < 0 || !(mask & (1ULL << other_rel_pos))) continue;
      const int other = member_index(other_rel_pos);
      const int cur_col = j.left_table == cur_table ? j.left_column : j.right_column;
      const int other_col = j.left_table == cur_table ? j.right_column : j.left_column;
      if (!visited[static_cast<size_t>(other)]) {
        visited[static_cast<size_t>(other)] = true;
        TreeEdge e;
        e.parent_pos = cur;
        e.child_pos = other;
        e.key_cols.emplace_back(cur_col, other_col);
        children[static_cast<size_t>(cur)].push_back(e);
        stack.push_back(other);
      } else {
        // Extra edge between already-connected members: if it parallels an
        // existing parent-child edge, extend that edge's composite key;
        // cyclic graphs are not supported (workloads generate FK trees).
        bool extended = false;
        for (auto& e : children[static_cast<size_t>(cur)]) {
          if (e.child_pos == other) {
            bool dup = false;
            for (auto& kc : e.key_cols) {
              if (kc.first == cur_col && kc.second == other_col) dup = true;
            }
            if (!dup) e.key_cols.emplace_back(cur_col, other_col);
            extended = true;
            break;
          }
        }
        for (auto& e : children[static_cast<size_t>(other)]) {
          if (e.child_pos == cur) {
            bool dup = false;
            for (auto& kc : e.key_cols) {
              if (kc.first == other_col && kc.second == cur_col) dup = true;
            }
            if (!dup) e.key_cols.emplace_back(other_col, cur_col);
            extended = true;
            break;
          }
        }
        NEO_CHECK_MSG(extended, "oracle: cyclic join graph not supported");
      }
    }
  }

  // Bottom-up message passing. weight[i][row] = number of join combinations
  // in member i's subtree rooted at that row; messages are keyed by the
  // composite join key toward the parent.
  std::vector<std::vector<double>> weights(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int table_id =
        query.relations[static_cast<size_t>(members[static_cast<size_t>(i)])];
    const Selection& sel = CachedSelection(query, table_id);
    weights[static_cast<size_t>(i)].assign(sel.mask.size(), 0.0);
    for (size_t row = 0; row < sel.mask.size(); ++row) {
      weights[static_cast<size_t>(i)][row] = sel.mask[row] ? 1.0 : 0.0;
    }
  }

  // Process in reverse BFS order so children finish before parents.
  for (auto it_order = order.rbegin(); it_order != order.rend(); ++it_order) {
    const int node = *it_order;
    const int node_table =
        query.relations[static_cast<size_t>(members[static_cast<size_t>(node)])];
    const storage::Table& node_storage = db_.table(schema_.table(node_table).name);
    for (const TreeEdge& e : children[static_cast<size_t>(node)]) {
      const int child = e.child_pos;
      const int child_table =
          query.relations[static_cast<size_t>(members[static_cast<size_t>(child)])];
      const storage::Table& child_storage =
          db_.table(schema_.table(child_table).name);

      // Aggregate child weights by composite key.
      std::unordered_map<uint64_t, double> msg;
      const auto& child_weights = weights[static_cast<size_t>(child)];
      for (size_t row = 0; row < child_weights.size(); ++row) {
        if (child_weights[row] == 0.0) continue;
        uint64_t key = 0xabc;
        for (const auto& [pcol, ccol] : e.key_cols) {
          key = util::HashCombine(
              key, static_cast<uint64_t>(
                       child_storage.column(static_cast<size_t>(ccol)).CodeAt(row)));
        }
        msg[key] += child_weights[row];
      }
      // Multiply into parent weights.
      auto& node_weights = weights[static_cast<size_t>(node)];
      for (size_t row = 0; row < node_weights.size(); ++row) {
        if (node_weights[row] == 0.0) continue;
        uint64_t key = 0xabc;
        for (const auto& [pcol, ccol] : e.key_cols) {
          key = util::HashCombine(
              key, static_cast<uint64_t>(
                       node_storage.column(static_cast<size_t>(pcol)).CodeAt(row)));
        }
        auto msg_it = msg.find(key);
        node_weights[row] = msg_it == msg.end() ? 0.0 : node_weights[row] * msg_it->second;
      }
    }
  }

  double total = 0.0;
  for (double w : weights[static_cast<size_t>(order[0])]) total += w;
  return total;
}

}  // namespace neo::engine
