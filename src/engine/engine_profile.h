// Engine profiles: per-operator work-unit weights that emulate the four
// execution engines of the paper's evaluation (§6.1-6.2). The latency of a
// complete plan is the profile-weighted sum of per-operator work computed
// from *true* cardinalities (see latency_model.h), so the same plan costs
// different amounts on different "engines", and different plans rank
// differently per engine — which is what Neo must adapt to.
#pragma once

#include <cstdint>
#include <string>

namespace neo::engine {

enum class EngineKind : int { kPostgres = 0, kSqlite = 1, kMssql = 2, kOracle = 3 };
constexpr int kNumEngines = 4;
const char* EngineKindName(EngineKind kind);

struct EngineProfile {
  std::string name;

  // CPU work per tuple by operator stage.
  double seq_tuple = 1.0;      ///< Sequential scan, per stored row.
  double filter_tuple = 0.2;   ///< Predicate evaluation, per scanned row.
  double index_tuple = 2.0;    ///< Random index fetch, per matched row.
  double btree_depth = 4.0;    ///< Per index probe: weight * log2(rows).
  double hash_build = 2.0;     ///< Hash-table insert, per build row.
  double hash_probe = 1.2;     ///< Hash-table probe, per probe row.
  double merge_tuple = 0.8;    ///< Merge step, per input row.
  double sort_tuple = 0.25;    ///< Sort: weight * n * log2(n).
  double loop_tuple = 0.6;     ///< Naive nested loop, per (outer x inner) pair.
  double output_tuple = 0.3;   ///< Per produced row, any operator.

  // Memory behavior: hash builds larger than this spill.
  double hash_mem_rows = 200000.0;
  double spill_factor = 3.0;  ///< Multiplier applied to the spilled build.

  /// Degree of intra-query parallelism the engine achieves (divides total
  /// work; commercial engines > open source, per paper §6.2).
  double parallelism = 1.0;

  /// Deterministic plan-keyed latency jitter amplitude (fraction of latency);
  /// emulates run-to-run variation without breaking reproducibility.
  double noise = 0.03;

  /// Work units -> milliseconds conversion.
  double ms_per_kilounit = 2.0;
};

/// Built-in profile for each emulated engine.
const EngineProfile& GetEngineProfile(EngineKind kind);

}  // namespace neo::engine
