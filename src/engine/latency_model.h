// Deterministic latency model: walks a complete physical plan, computes every
// operator's input/output cardinality from the true-cardinality oracle, and
// charges engine-profile-weighted work per operator. Captures the physical
// effects the paper's value network must learn to recognize (§4):
//   - loop joins without an inner index are quadratic (the catastrophic
//     plans Leis et al. observed);
//   - index nested-loop joins are cheap for small outer cardinalities;
//   - hash joins pay a build cost and spill when the build side exceeds the
//     engine's memory grant ("a hash join using a fact table as the build
//     relation is likely to incur spills");
//   - merge joins are cheap when inputs arrive sorted (index scans and
//     previous merge joins preserve order) and pay n log n sorts otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "src/engine/cardinality_oracle.h"
#include "src/engine/engine_profile.h"
#include "src/plan/plan.h"

namespace neo::engine {

/// Per-node execution summary (also consumed by featurization's cardinality
/// channel and by EXPLAIN-style output).
struct NodeExec {
  double out_card = 0.0;
  double work = 0.0;               ///< Cumulative work of the subtree.
  std::vector<int> sorted_cols;    ///< Global column ids the output is sorted by.
  bool index_inner_capable = false;
};

struct ExecResult {
  double latency_ms = 0.0;
  double total_work = 0.0;
  double root_card = 0.0;
};

class LatencyModel {
 public:
  LatencyModel(const EngineProfile& profile, CardinalityOracle* oracle)
      : profile_(profile), oracle_(oracle) {}

  /// Latency of a complete plan on this engine. Deterministic; includes
  /// plan-keyed jitter if the profile's noise amplitude is non-zero.
  ExecResult Execute(const query::Query& query, const plan::PartialPlan& plan) const;

  /// Work of one subtree (no noise, no ms conversion); exposed for tests.
  /// `preferred_sort_gid` is the global column id an enclosing merge join
  /// would like this subtree's output sorted by (-1 = no preference); index
  /// scan leaves use it to pick an index-order sweep when beneficial.
  NodeExec EvaluateNode(const query::Query& query, const plan::PlanNode& node,
                        int preferred_sort_gid = -1) const;

  const EngineProfile& profile() const { return profile_; }
  const CardinalityOracle& oracle() const { return *oracle_; }

 private:
  const EngineProfile& profile_;
  CardinalityOracle* oracle_;
};

/// True if an index scan over `table_id` is meaningful for this query: the
/// table has an index on a join-edge column (enabling index nested-loop) or
/// on a column with an index-supported predicate (Eq or range).
bool IndexScanUsable(const catalog::Schema& schema, const query::Query& query,
                     int table_id);

}  // namespace neo::engine
