// Facade bundling one emulated engine: profile + oracle + latency model +
// a plan-latency memo cache. Plays the role of "the database execution
// engine" in Figure 1 of the paper: Neo submits a complete plan, gets back a
// latency.
//
// Guardrail surface (paper §6.3.3, Fig. 14): `ExecutePlanGuarded` runs a plan
// under a watchdog deadline — a plan whose (possibly fault-injected) latency
// exceeds the deadline is killed, reported via a util::Status, and charged
// only the deadline's worth of simulated execution time, exactly like a
// production timeout. An optional util::FaultInjector perturbs executions
// with deterministic latency spikes and mid-flight failures so the guardrails
// above (Neo's circuit breaker, the experience clipping) can be exercised
// reproducibly.
//
// Thread safety: the latency memo, its counters, and the simulated-time
// accumulator live behind one internal mutex, so concurrent guarded serves
// (the serving core overlapping a background retrain, or tests hammering the
// engine from many threads) keep every counter exact. A single mutex — not a
// sharded cache — is deliberate: the memo's exact global LRU order is pinned
// by tests (cap=1 eviction sequences), and real serve call sites already
// serialize execution, so the lock is uncontended in practice.
#pragma once

#include <memory>
#include <mutex>

#include "src/engine/cardinality_oracle.h"
#include "src/engine/engine_profile.h"
#include "src/engine/latency_model.h"
#include "src/util/fault_injector.h"
#include "src/util/lru_map.h"
#include "src/util/status.h"

namespace neo::engine {

/// Outcome of one guarded plan execution.
struct ExecutionResult {
  /// Latency the caller incurred: the model latency, clipped at the deadline
  /// when the watchdog fired (the query was killed at the deadline).
  double latency_ms = 0.0;
  /// The engine model's full latency (after fault injection, before the
  /// watchdog clip). Equal to latency_ms unless timed_out.
  double model_latency_ms = 0.0;
  bool timed_out = false;          ///< Watchdog killed the execution.
  bool injected_failure = false;   ///< FaultInjector aborted the execution.
  util::Status status;             ///< Ok / DeadlineExceeded / Aborted.
};

class ExecutionEngine {
 public:
  /// Default bound on the plan-latency memo cache (entries). The model is
  /// deterministic, so eviction only costs recomputation, never correctness.
  static constexpr size_t kDefaultLatencyCacheCap = 1 << 20;

  ExecutionEngine(const catalog::Schema& schema, const storage::Database& db,
                  EngineKind kind)
      : kind_(kind),
        profile_(GetEngineProfile(kind)),
        oracle_(std::make_unique<CardinalityOracle>(schema, db)),
        model_(profile_, oracle_.get()) {
    latency_cache_.Clear(kDefaultLatencyCacheCap);
  }

  /// Executes a complete plan, returning its latency in (simulated) ms.
  /// Deterministic; memoized on (query, plan) so RL retraining loops are
  /// cheap, but every call still accrues simulated execution time. Equivalent
  /// to ExecutePlanGuarded with no deadline (kept as the unguarded seam: the
  /// legacy call sites and the guards-off parity path use it unchanged).
  double ExecutePlan(const query::Query& query, const plan::PartialPlan& plan);

  /// Executes under a watchdog deadline (<= 0 disables it). When the plan's
  /// latency — including any injected spike — exceeds the deadline, the
  /// execution is killed: `latency_ms` is clipped at the deadline,
  /// `timed_out` is set, and `status` reports kDeadlineExceeded. Injected
  /// mid-flight failures report kAborted (the incurred latency still
  /// accrues: the work was done before the crash).
  ExecutionResult ExecutePlanGuarded(const query::Query& query,
                                     const plan::PartialPlan& plan,
                                     double deadline_ms);

  /// Attaches a fault injector (nullptr detaches). Not owned; must outlive
  /// the engine or be detached first. Injection draws are deterministic per
  /// (injector seed, plan key, occurrence) — see util::FaultInjector.
  void SetFaultInjector(util::FaultInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    injector_ = injector;
  }

  /// Re-caps the latency memo cache, dropping all entries (0 = unbounded).
  void SetLatencyCacheCap(size_t cap) {
    std::lock_guard<std::mutex> lock(mu_);
    latency_cache_.Clear(cap);
  }

  EngineKind kind() const { return kind_; }
  const EngineProfile& profile() const { return profile_; }
  CardinalityOracle& oracle() { return *oracle_; }
  const LatencyModel& model() const { return model_; }

  /// Simulated wall-clock spent executing queries (counts cache hits too:
  /// a real deployment executes each submitted plan). Timed-out executions
  /// accrue only up to the deadline — the watchdog killed them. Used by the
  /// Fig. 11 training-time accounting.
  double simulated_execution_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return simulated_execution_ms_;
  }
  size_t num_executions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_executions_;
  }
  /// Distinct plans currently memoized (bounded by the cache cap).
  size_t num_distinct_plans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latency_cache_.size();
  }

  size_t latency_cache_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_hits_;
  }
  size_t latency_cache_misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_misses_;
  }
  size_t latency_cache_evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_evictions_;
  }
  size_t num_timeouts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_timeouts_;
  }
  size_t num_injected_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_injected_failures_;
  }

 private:
  EngineKind kind_;
  const EngineProfile& profile_;
  std::unique_ptr<CardinalityOracle> oracle_;
  LatencyModel model_;
  /// Guards the memo, counters, injector pointer, and simulated time (see the
  /// thread-safety notes in the file header).
  mutable std::mutex mu_;
  /// Plan-latency memo, bounded LRU (it previously grew without limit — a
  /// leak under any serving-shaped workload). Stores the model's un-injected
  /// latency; fault perturbation applies per execution on top.
  util::LruMap<uint64_t, double> latency_cache_;
  util::FaultInjector* injector_ = nullptr;
  double simulated_execution_ms_ = 0.0;
  size_t num_executions_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t cache_evictions_ = 0;
  size_t num_timeouts_ = 0;
  size_t num_injected_failures_ = 0;
};

}  // namespace neo::engine
