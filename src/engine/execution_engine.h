// Facade bundling one emulated engine: profile + oracle + latency model +
// a plan-latency memo cache. Plays the role of "the database execution
// engine" in Figure 1 of the paper: Neo submits a complete plan, gets back a
// latency.
#pragma once

#include <memory>
#include <unordered_map>

#include "src/engine/cardinality_oracle.h"
#include "src/engine/engine_profile.h"
#include "src/engine/latency_model.h"

namespace neo::engine {

class ExecutionEngine {
 public:
  ExecutionEngine(const catalog::Schema& schema, const storage::Database& db,
                  EngineKind kind)
      : kind_(kind),
        profile_(GetEngineProfile(kind)),
        oracle_(std::make_unique<CardinalityOracle>(schema, db)),
        model_(profile_, oracle_.get()) {}

  /// Executes a complete plan, returning its latency in (simulated) ms.
  /// Deterministic; memoized on (query, plan) so RL retraining loops are
  /// cheap, but every call still accrues simulated execution time.
  double ExecutePlan(const query::Query& query, const plan::PartialPlan& plan);

  EngineKind kind() const { return kind_; }
  const EngineProfile& profile() const { return profile_; }
  CardinalityOracle& oracle() { return *oracle_; }
  const LatencyModel& model() const { return model_; }

  /// Simulated wall-clock spent executing queries (counts cache hits too:
  /// a real deployment executes each submitted plan). Used by the Fig. 11
  /// training-time accounting.
  double simulated_execution_ms() const { return simulated_execution_ms_; }
  size_t num_executions() const { return num_executions_; }
  size_t num_distinct_plans() const { return latency_cache_.size(); }

 private:
  EngineKind kind_;
  const EngineProfile& profile_;
  std::unique_ptr<CardinalityOracle> oracle_;
  LatencyModel model_;
  std::unordered_map<uint64_t, double> latency_cache_;
  double simulated_execution_ms_ = 0.0;
  size_t num_executions_ = 0;
};

}  // namespace neo::engine
