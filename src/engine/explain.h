// EXPLAIN-style plan rendering: operator tree with per-node true output
// cardinalities and cumulative work, as computed by the latency model.
// Useful for inspecting why one plan beats another.
#pragma once

#include <string>

#include "src/engine/latency_model.h"

namespace neo::engine {

/// Multi-line rendering, e.g.:
///   HashJoin  (out=1204, work=5.31e4)
///     IndexScan movie_keyword  (out=880, work=3.1e3)
///     TableScan keyword  (out=12, work=6.2e2)
std::string ExplainPlan(const query::Query& query, const plan::PartialPlan& plan,
                        const LatencyModel& model);

}  // namespace neo::engine
