// Exact predicate evaluation over stored data. Produces per-relation
// selection vectors used by the cardinality oracle and (as exact
// selectivities) by the latency model.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/query/query.h"
#include "src/storage/table.h"

namespace neo::engine {

/// Evaluates one predicate against one row code.
bool MatchesPredicate(const query::Predicate& pred, int64_t code,
                      const std::unordered_set<int64_t>* contains_codes);

/// Computes the dictionary-code set matched by a kContains predicate.
std::unordered_set<int64_t> ContainsCodeSet(const storage::Column& column,
                                            const std::string& needle);

/// Selection result for one relation of a query.
struct Selection {
  std::vector<uint8_t> mask;  ///< 1 if the row passes all predicates.
  size_t count = 0;           ///< Number of passing rows.
};

/// Applies all of `query`'s predicates on `table_id` to the stored table.
Selection EvaluatePredicates(const storage::Database& db, const catalog::Schema& schema,
                             const query::Query& query, int table_id);

}  // namespace neo::engine
