#include "src/engine/execution_engine.h"

#include "src/util/rng.h"

namespace neo::engine {

double ExecutionEngine::ExecutePlan(const query::Query& query,
                                    const plan::PartialPlan& plan) {
  const uint64_t key = util::HashCombine(plan.Hash(), query.fingerprint);
  ++num_executions_;
  auto it = latency_cache_.find(key);
  if (it != latency_cache_.end()) {
    simulated_execution_ms_ += it->second;
    return it->second;
  }
  const double ms = model_.Execute(query, plan).latency_ms;
  latency_cache_.emplace(key, ms);
  simulated_execution_ms_ += ms;
  return ms;
}

}  // namespace neo::engine
