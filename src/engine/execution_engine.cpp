#include "src/engine/execution_engine.h"

#include "src/util/rng.h"

namespace neo::engine {

double ExecutionEngine::ExecutePlan(const query::Query& query,
                                    const plan::PartialPlan& plan) {
  return ExecutePlanGuarded(query, plan, /*deadline_ms=*/0.0).latency_ms;
}

ExecutionResult ExecutionEngine::ExecutePlanGuarded(const query::Query& query,
                                                    const plan::PartialPlan& plan,
                                                    double deadline_ms) {
  ExecutionResult result;
  const uint64_t key = util::HashCombine(plan.Hash(), query.fingerprint);
  // Whole-body lock: memo probe, model recompute, injector draws, and the
  // accounting must be one atomic step so concurrent serves observe exact
  // hit/miss/eviction sequences (the model is deterministic, so serializing
  // recomputes changes no values, only keeps the counters exact).
  std::lock_guard<std::mutex> lock(mu_);
  ++num_executions_;

  double base;
  if (const double* hit = latency_cache_.Find(key)) {
    base = *hit;
    ++cache_hits_;
  } else {
    base = model_.Execute(query, plan).latency_ms;
    ++cache_misses_;
    if (latency_cache_.Insert(key, base)) ++cache_evictions_;
  }

  double ms = base;
  if (injector_ != nullptr && injector_->enabled()) {
    ms = injector_->PerturbLatency(key, ms);
    if (injector_->DrawExecutionFailure(key)) {
      result.injected_failure = true;
      ++num_injected_failures_;
      result.status = util::Status::Aborted("injected execution failure");
    }
  }
  result.model_latency_ms = ms;

  if (deadline_ms > 0.0 && ms > deadline_ms) {
    // Watchdog: the execution is killed at the deadline; only the deadline's
    // worth of work was incurred, and the true latency is unobserved.
    result.timed_out = true;
    ++num_timeouts_;
    result.latency_ms = deadline_ms;
    result.status = util::Status::DeadlineExceeded("plan exceeded watchdog deadline");
  } else {
    result.latency_ms = ms;
  }

  simulated_execution_ms_ += result.latency_ms;
  return result;
}

}  // namespace neo::engine
