#include "src/engine/predicate_eval.h"

#include "src/util/status.h"

namespace neo::engine {

bool MatchesPredicate(const query::Predicate& pred, int64_t code,
                      const std::unordered_set<int64_t>* contains_codes) {
  using query::PredOp;
  switch (pred.op) {
    case PredOp::kEq: return code == pred.value_code;
    case PredOp::kNeq: return code != pred.value_code;
    case PredOp::kLt: return code < pred.value_code;
    case PredOp::kLe: return code <= pred.value_code;
    case PredOp::kGt: return code > pred.value_code;
    case PredOp::kGe: return code >= pred.value_code;
    case PredOp::kContains:
      NEO_CHECK(contains_codes != nullptr);
      return contains_codes->count(code) > 0;
  }
  return false;
}

std::unordered_set<int64_t> ContainsCodeSet(const storage::Column& column,
                                            const std::string& needle) {
  std::unordered_set<int64_t> out;
  for (int64_t code : column.CodesContaining(needle)) out.insert(code);
  return out;
}

Selection EvaluatePredicates(const storage::Database& db, const catalog::Schema& schema,
                             const query::Query& query, int table_id) {
  const catalog::TableInfo& info = schema.table(table_id);
  const storage::Table& table = db.table(info.name);
  Selection sel;
  sel.mask.assign(table.num_rows(), 1);
  sel.count = table.num_rows();

  for (const query::Predicate& pred : query.predicates) {
    if (pred.table_id != table_id) continue;
    const storage::Column& col = table.column(static_cast<size_t>(pred.column_idx));
    std::unordered_set<int64_t> contains_codes;
    const std::unordered_set<int64_t>* contains_ptr = nullptr;
    if (pred.op == query::PredOp::kContains) {
      contains_codes = ContainsCodeSet(col, pred.value_str);
      contains_ptr = &contains_codes;
    }
    size_t count = 0;
    for (size_t row = 0; row < sel.mask.size(); ++row) {
      if (!sel.mask[row]) continue;
      if (MatchesPredicate(pred, col.CodeAt(row), contains_ptr)) {
        ++count;
      } else {
        sel.mask[row] = 0;
      }
    }
    sel.count = count;
  }
  // Recount in case there were no predicates (count stayed at num_rows).
  if (query.PredicatesOn(table_id).empty()) sel.count = table.num_rows();
  return sel;
}

}  // namespace neo::engine
