#include "src/engine/engine_profile.h"

#include "src/util/status.h"

namespace neo::engine {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPostgres: return "PostgreSQL";
    case EngineKind::kSqlite: return "SQLite";
    case EngineKind::kMssql: return "SQLServer";
    case EngineKind::kOracle: return "Oracle";
  }
  return "?";
}

namespace {

EngineProfile MakePostgres() {
  EngineProfile p;
  p.name = "PostgreSQL";
  return p;  // The reference profile: defaults above are tuned for it.
}

EngineProfile MakeSqlite() {
  // SQLite's executor is loop-join centric with strong B-tree support but a
  // comparatively weak hash join and no intra-query parallelism.
  EngineProfile p;
  p.name = "SQLite";
  p.seq_tuple = 0.9;
  p.index_tuple = 1.4;
  p.btree_depth = 2.5;
  p.hash_build = 5.0;
  p.hash_probe = 3.0;
  p.merge_tuple = 1.6;
  p.sort_tuple = 0.5;
  p.loop_tuple = 0.5;
  p.hash_mem_rows = 50000.0;
  p.spill_factor = 5.0;
  p.parallelism = 1.0;
  return p;
}

EngineProfile MakeMssql() {
  // Commercial engine: efficient across all operators, large memory grants,
  // parallel execution.
  EngineProfile p;
  p.name = "SQLServer";
  p.seq_tuple = 0.8;
  p.filter_tuple = 0.15;
  p.index_tuple = 1.6;
  p.btree_depth = 3.0;
  p.hash_build = 1.5;
  p.hash_probe = 0.9;
  p.merge_tuple = 0.6;
  p.sort_tuple = 0.2;
  p.loop_tuple = 0.55;
  p.output_tuple = 0.25;
  p.hash_mem_rows = 800000.0;
  p.spill_factor = 2.5;
  p.parallelism = 2.0;
  return p;
}

EngineProfile MakeOracle() {
  EngineProfile p;
  p.name = "Oracle";
  p.seq_tuple = 0.75;
  p.filter_tuple = 0.15;
  p.index_tuple = 1.5;
  p.btree_depth = 3.2;
  p.hash_build = 1.4;
  p.hash_probe = 0.85;
  p.merge_tuple = 0.65;
  p.sort_tuple = 0.18;
  p.loop_tuple = 0.6;
  p.output_tuple = 0.25;
  p.hash_mem_rows = 1000000.0;
  p.spill_factor = 2.5;
  p.parallelism = 2.2;
  return p;
}

}  // namespace

const EngineProfile& GetEngineProfile(EngineKind kind) {
  static const EngineProfile kPostgres = MakePostgres();
  static const EngineProfile kSqlite = MakeSqlite();
  static const EngineProfile kMssql = MakeMssql();
  static const EngineProfile kOracle = MakeOracle();
  switch (kind) {
    case EngineKind::kPostgres: return kPostgres;
    case EngineKind::kSqlite: return kSqlite;
    case EngineKind::kMssql: return kMssql;
    case EngineKind::kOracle: return kOracle;
  }
  NEO_CHECK(false);
  return kPostgres;
}

}  // namespace neo::engine
