// True-cardinality oracle: computes the exact result size of joining any
// connected subset of a query's relations (with all single-table predicates
// applied) by actually evaluating the join over the stored data.
//
// Because workload join graphs are acyclic (FK trees, like JOB's), any
// connected relation subset is a tree, and the exact count is computed with
// one bottom-up message-passing sweep (O(total rows) hash aggregation per
// subset) instead of materializing join results. Results are memoized per
// (query, subset), so the thousands of plan executions in an RL training run
// reuse the same counts.
//
// This oracle plays the role of the real execution engines' data-dependent
// behavior in the paper: all latency numbers derive from these exact counts,
// so cross-column correlations in the data show up in latencies exactly as
// they would on a real system.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/catalog/schema.h"
#include "src/engine/predicate_eval.h"
#include "src/query/query.h"
#include "src/storage/table.h"

namespace neo::engine {

class CardinalityOracle {
 public:
  CardinalityOracle(const catalog::Schema& schema, const storage::Database& db)
      : schema_(schema), db_(db) {}

  /// Exact cardinality of joining the relations in `mask` (bit i =
  /// query.relations[i]), all predicates applied. `mask` must induce a
  /// connected subgraph. For a single relation, the filtered row count.
  double Cardinality(const query::Query& query, uint64_t mask);

  /// Filtered base-table cardinality for one relation of the query.
  double BaseCardinality(const query::Query& query, int table_id);

  /// Unfiltered row count of a table.
  size_t TableRows(int table_id) const;

  /// Exact selectivity of the query's predicates on `table_id` in [0,1].
  double PredicateSelectivity(const query::Query& query, int table_id);

  /// Number of memoized subset entries (for tests / stats).
  size_t CacheSize() const { return subset_cache_.size(); }

  const catalog::Schema& schema() const { return schema_; }
  const storage::Database& db() const { return db_; }

 private:
  struct QueryKey {
    uint64_t fingerprint;
    uint64_t mask;
    bool operator==(const QueryKey& o) const {
      return fingerprint == o.fingerprint && mask == o.mask;
    }
  };
  struct QueryKeyHash {
    size_t operator()(const QueryKey& k) const;
  };

  /// Selection vectors are cached per (query, relation).
  const Selection& CachedSelection(const query::Query& query, int table_id);

  double ComputeSubset(const query::Query& query, uint64_t mask);

  const catalog::Schema& schema_;
  const storage::Database& db_;
  std::unordered_map<QueryKey, double, QueryKeyHash> subset_cache_;
  std::unordered_map<QueryKey, Selection, QueryKeyHash> selection_cache_;
};

}  // namespace neo::engine
