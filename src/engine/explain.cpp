#include "src/engine/explain.h"

#include "src/util/string_util.h"

namespace neo::engine {

namespace {

const char* JoinName(plan::JoinOp op) {
  switch (op) {
    case plan::JoinOp::kHash: return "HashJoin";
    case plan::JoinOp::kMerge: return "MergeJoin";
    case plan::JoinOp::kLoop: return "LoopJoin";
  }
  return "?";
}

const char* ScanName(plan::ScanOp op) {
  switch (op) {
    case plan::ScanOp::kTable: return "TableScan";
    case plan::ScanOp::kIndex: return "IndexScan";
    case plan::ScanOp::kUnspecified: return "UnspecifiedScan";
  }
  return "?";
}

void Render(const query::Query& query, const plan::PlanNode& node,
            const LatencyModel& model, const catalog::Schema& schema, int depth,
            std::string* out) {
  const NodeExec exec = model.EvaluateNode(query, node);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node.is_join) {
    out->append(util::StrFormat("%s  (out=%.0f, work=%.3g)\n", JoinName(node.join_op),
                                exec.out_card, exec.work));
    Render(query, *node.left, model, schema, depth + 1, out);
    Render(query, *node.right, model, schema, depth + 1, out);
  } else {
    out->append(util::StrFormat("%s %s  (out=%.0f, work=%.3g)\n",
                                ScanName(node.scan_op),
                                schema.table(node.table_id).name.c_str(),
                                exec.out_card, exec.work));
  }
}

}  // namespace

std::string ExplainPlan(const query::Query& query, const plan::PartialPlan& plan,
                        const LatencyModel& model) {
  std::string out;
  const catalog::Schema& schema = model.oracle().schema();
  for (const auto& root : plan.roots) {
    Render(query, *root, model, schema, 0, &out);
  }
  return out;
}

}  // namespace neo::engine
