#include "src/engine/latency_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::engine {

namespace {

double Log2Safe(double x) { return std::log2(std::max(2.0, x)); }

/// Join-edge columns connecting the two child subtrees, as
/// (left_table, left_col, right_table, right_col), canonically ordered.
std::vector<query::JoinEdge> EdgesBetween(const query::Query& query,
                                          uint64_t left_mask, uint64_t right_mask) {
  std::vector<query::JoinEdge> out;
  for (const query::JoinEdge& j : query.joins) {
    const int li = query.RelationIndex(j.left_table);
    const int ri = query.RelationIndex(j.right_table);
    if (li < 0 || ri < 0) continue;
    const uint64_t lbit = 1ULL << li;
    const uint64_t rbit = 1ULL << ri;
    if ((left_mask & lbit) && (right_mask & rbit)) {
      out.push_back(j);
    } else if ((left_mask & rbit) && (right_mask & lbit)) {
      // Normalize orientation: left fields describe the left subtree.
      query::JoinEdge flipped;
      flipped.left_table = j.right_table;
      flipped.left_column = j.right_column;
      flipped.right_table = j.left_table;
      flipped.right_column = j.left_column;
      out.push_back(flipped);
    }
  }
  std::sort(out.begin(), out.end(), [](const query::JoinEdge& a, const query::JoinEdge& b) {
    return std::tie(a.left_table, a.left_column, a.right_table, a.right_column) <
           std::tie(b.left_table, b.left_column, b.right_table, b.right_column);
  });
  return out;
}

/// Index-supported predicate ops.
bool IndexSupported(query::PredOp op) {
  using query::PredOp;
  return op == PredOp::kEq || op == PredOp::kLt || op == PredOp::kLe ||
         op == PredOp::kGt || op == PredOp::kGe;
}

}  // namespace

bool IndexScanUsable(const catalog::Schema& schema, const query::Query& query,
                     int table_id) {
  const catalog::TableInfo& info = schema.table(table_id);
  auto is_indexed = [&](int col) {
    return info.columns[static_cast<size_t>(col)].indexed ||
           info.primary_key == col;
  };
  for (const query::JoinEdge& j : query.joins) {
    if (j.left_table == table_id && is_indexed(j.left_column)) return true;
    if (j.right_table == table_id && is_indexed(j.right_column)) return true;
  }
  for (const query::Predicate& p : query.predicates) {
    if (p.table_id == table_id && IndexSupported(p.op) &&
        is_indexed(p.column_idx)) {
      return true;
    }
  }
  return false;
}

NodeExec LatencyModel::EvaluateNode(const query::Query& query,
                                    const plan::PlanNode& node,
                                    int preferred_sort_gid) const {
  const catalog::Schema& schema = oracle_->schema();
  NodeExec result;
  result.out_card = oracle_->Cardinality(query, node.rel_mask);
  constexpr double kStartup = 50.0;

  if (!node.is_join) {
    NEO_CHECK_MSG(node.scan_op != plan::ScanOp::kUnspecified,
                  "cannot execute an unspecified scan");
    const int table_id = node.table_id;
    const catalog::TableInfo& info = schema.table(table_id);
    const storage::Table& table = oracle_->db().table(info.name);
    const double n_rows = static_cast<double>(table.num_rows());
    const size_t n_preds = query.PredicatesOn(table_id).size();

    if (node.scan_op == plan::ScanOp::kTable) {
      result.work = kStartup + n_rows * (profile_.seq_tuple +
                                         profile_.filter_tuple * static_cast<double>(n_preds)) +
                    result.out_card * profile_.output_tuple;
      return result;
    }

    // Index scan. Pick the most selective index-supported predicate on an
    // indexed column; exact match counts come from the stored index.
    double fetched = n_rows;  // Full index sweep if nothing narrows it.
    int sort_col = -1;
    for (const query::Predicate& p : query.PredicatesOn(table_id)) {
      if (!IndexSupported(p.op)) continue;
      const auto& col_info = info.columns[static_cast<size_t>(p.column_idx)];
      if (!col_info.indexed && info.primary_key != p.column_idx) continue;
      const storage::Index* index = table.GetIndex(col_info.name);
      if (index == nullptr) continue;
      double matches = 0.0;
      switch (p.op) {
        case query::PredOp::kEq:
          matches = static_cast<double>(index->CountEqual(p.value_code));
          break;
        case query::PredOp::kLt:
          matches = static_cast<double>(index->CountRange(INT64_MIN, p.value_code - 1));
          break;
        case query::PredOp::kLe:
          matches = static_cast<double>(index->CountRange(INT64_MIN, p.value_code));
          break;
        case query::PredOp::kGt:
          matches = static_cast<double>(index->CountRange(p.value_code + 1, INT64_MAX));
          break;
        case query::PredOp::kGe:
          matches = static_cast<double>(index->CountRange(p.value_code, INT64_MAX));
          break;
        default: continue;
      }
      if (matches < fetched) {
        fetched = matches;
        sort_col = col_info.global_id;
      }
    }
    // If an enclosing merge join wants a particular order and this table has
    // an index on that column, an index-order sweep avoids the parent's sort.
    // Use it unless a selective predicate path (< 20% of rows) is available.
    bool use_preferred_sweep = false;
    if (preferred_sort_gid >= 0) {
      const auto& pref_col = schema.ColumnByGlobalId(preferred_sort_gid);
      if (pref_col.table_id == table_id &&
          table.HasIndex(pref_col.name) &&
          !(sort_col >= 0 && fetched < 0.2 * n_rows)) {
        use_preferred_sweep = true;
      }
    }
    if (use_preferred_sweep) {
      result.work = kStartup +
                    n_rows * (profile_.index_tuple +
                              profile_.filter_tuple * static_cast<double>(n_preds)) +
                    result.out_card * profile_.output_tuple;
      result.sorted_cols.push_back(preferred_sort_gid);
      return result;
    }
    result.work = kStartup + profile_.btree_depth * Log2Safe(n_rows) +
                  fetched * (profile_.index_tuple +
                             profile_.filter_tuple * static_cast<double>(n_preds)) +
                  result.out_card * profile_.output_tuple;
    if (sort_col >= 0) {
      result.sorted_cols.push_back(sort_col);
    } else if (fetched >= n_rows) {
      // Full sweep of some index: output ordered by that index's column. Use
      // the first declared index for determinism.
      const auto idx_cols = table.indexed_columns();
      if (!idx_cols.empty()) {
        const int gid = schema.GlobalColumnId(info.name, idx_cols.front());
        if (gid >= 0) result.sorted_cols.push_back(gid);
      }
    }
    return result;
  }

  // ---- Join node --------------------------------------------------------
  const plan::PlanNode& left = *node.left;
  const plan::PlanNode& right = *node.right;
  const std::vector<query::JoinEdge> edges =
      EdgesBetween(query, left.rel_mask, right.rel_mask);
  NEO_CHECK_MSG(!edges.empty(), "cross products are not generated");
  const query::JoinEdge& key_edge = edges.front();
  const int left_key_gid = schema.GlobalColumnId(
      schema.table(key_edge.left_table).name,
      schema.table(key_edge.left_table).columns[static_cast<size_t>(key_edge.left_column)].name);
  const int right_key_gid = schema.GlobalColumnId(
      schema.table(key_edge.right_table).name,
      schema.table(key_edge.right_table)
          .columns[static_cast<size_t>(key_edge.right_column)]
          .name);

  const double out = result.out_card;

  // Loop and hash joins stream the left (outer/probe) side, so an enclosing
  // merge join's order preference propagates to it; merge joins want their
  // own join key.
  const int left_pref = node.join_op == plan::JoinOp::kMerge ? left_key_gid
                                                             : preferred_sort_gid;
  const NodeExec left_exec = EvaluateNode(query, left, left_pref);

  if (node.join_op == plan::JoinOp::kLoop) {
    // Index nested-loop: right child is an index scan whose table has an
    // index on the join-edge column.
    if (!right.is_join && right.scan_op == plan::ScanOp::kIndex) {
      const catalog::TableInfo& rinfo = schema.table(right.table_id);
      const storage::Table& rtable = oracle_->db().table(rinfo.name);
      bool edge_indexed = false;
      for (const query::JoinEdge& e : edges) {
        const auto& col = rinfo.columns[static_cast<size_t>(e.right_column)];
        if (col.indexed || rinfo.primary_key == e.right_column) {
          edge_indexed = true;
          break;
        }
      }
      if (edge_indexed) {
        const double probes = left_exec.out_card;
        const double rsel =
            std::max(oracle_->PredicateSelectivity(query, right.table_id), 1e-9);
        // Rows fetched via the index before the inner predicates filter them;
        // assumes join-key / predicate independence on the inner (documented
        // approximation; exact value would need predicate-less oracle calls).
        const double fetched = std::min(
            out / rsel, probes * static_cast<double>(rtable.num_rows()));
        const size_t n_preds = query.PredicatesOn(right.table_id).size();
        result.work = left_exec.work + kStartup +
                      probes * profile_.btree_depth * Log2Safe(static_cast<double>(
                                   rtable.num_rows())) +
                      fetched * (profile_.index_tuple +
                                 profile_.filter_tuple * static_cast<double>(n_preds)) +
                      out * profile_.output_tuple;
        result.sorted_cols = left_exec.sorted_cols;  // Preserves outer order.
        return result;
      }
    }
    // Naive nested loop over materialized inner.
    const NodeExec right_exec = EvaluateNode(query, right);
    result.work = left_exec.work + right_exec.work + kStartup +
                  left_exec.out_card * right_exec.out_card * profile_.loop_tuple +
                  out * profile_.output_tuple;
    result.sorted_cols = left_exec.sorted_cols;
    return result;
  }

  const NodeExec right_exec = EvaluateNode(
      query, right, node.join_op == plan::JoinOp::kMerge ? right_key_gid : -1);

  if (node.join_op == plan::JoinOp::kHash) {
    // Left = probe, right = build.
    const double build = right_exec.out_card;
    const double probe = left_exec.out_card;
    double join_work = build * profile_.hash_build + probe * profile_.hash_probe;
    if (build > profile_.hash_mem_rows) {
      join_work *= profile_.spill_factor;
    }
    result.work = left_exec.work + right_exec.work + kStartup + join_work +
                  out * profile_.output_tuple;
    // Hash join output order: streams the probe side.
    result.sorted_cols = left_exec.sorted_cols;
    return result;
  }

  // Merge join: sort any input not already ordered by its join key.
  auto sort_cost = [&](const NodeExec& exec, int key_gid) {
    const bool sorted = std::find(exec.sorted_cols.begin(), exec.sorted_cols.end(),
                                  key_gid) != exec.sorted_cols.end();
    if (sorted) return 0.0;
    return exec.out_card * Log2Safe(exec.out_card) * profile_.sort_tuple;
  };
  const double work = sort_cost(left_exec, left_key_gid) +
                      sort_cost(right_exec, right_key_gid) +
                      (left_exec.out_card + right_exec.out_card) * profile_.merge_tuple +
                      out * profile_.output_tuple;
  result.work = left_exec.work + right_exec.work + kStartup + work;
  result.sorted_cols = {left_key_gid, right_key_gid};
  return result;
}

ExecResult LatencyModel::Execute(const query::Query& query,
                                 const plan::PartialPlan& plan) const {
  NEO_CHECK_MSG(plan.IsComplete(), "Execute requires a complete plan");
  const NodeExec exec = EvaluateNode(query, *plan.roots[0]);
  ExecResult result;
  result.total_work = exec.work / profile_.parallelism;
  result.root_card = exec.out_card;
  double ms = result.total_work * profile_.ms_per_kilounit / 1000.0;
  if (profile_.noise > 0.0) {
    // Deterministic jitter keyed by (plan, query, engine).
    const uint64_t h = util::HashCombine(
        util::HashCombine(plan.Hash(), query.fingerprint),
        util::Mix64(std::hash<std::string>{}(profile_.name)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    ms *= 1.0 + profile_.noise * (2.0 * u - 1.0);
  }
  result.latency_ms = ms;
  return result;
}

}  // namespace neo::engine
