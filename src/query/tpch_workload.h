// TPC-H-like workload (paper §6.1): queries generated from 22 join-graph
// templates over the TPC-H-like schema. Following the paper, the train/test
// split is by template — no template appears in both sets — which
// SplitByTemplate implements (80 train / 20 test at default counts).
#pragma once

#include "src/query/workload.h"
#include "src/storage/table.h"

namespace neo::query {

Workload MakeTpchWorkload(const catalog::Schema& schema, const storage::Database& db,
                          uint64_t seed = 2345, int queries_per_template = 5);

/// Splits so that no template (query name prefix before the final '_') is
/// shared between train and test. `test_templates` templates go to test.
WorkloadSplit SplitByTemplate(const Workload& workload, int test_templates,
                              uint64_t seed);

}  // namespace neo::query
