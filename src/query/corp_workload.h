// Corp-like dashboard workload (paper §6.1): star-join queries over the
// fact_events schema, generated from 12 dashboard "panels" (families) with
// parameter grids — the repeated-template, skewed-predicate shape of an
// internal analytics workload.
#pragma once

#include "src/query/workload.h"
#include "src/storage/table.h"

namespace neo::query {

Workload MakeCorpWorkload(const catalog::Schema& schema, const storage::Database& db,
                          uint64_t seed = 3456, int queries_per_family = 10);

}  // namespace neo::query
