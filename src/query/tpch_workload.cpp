#include "src/query/tpch_workload.h"

#include <map>
#include <set>

#include "src/query/builder.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::query {

namespace {

const std::vector<std::string> kSegments = {"automobile", "building", "furniture",
                                            "household", "machinery"};
const std::vector<std::string> kPriorities = {"1-urgent", "2-high", "3-medium",
                                              "4-low", "5-none"};
const std::vector<std::string> kBrands = {"brand11", "brand12", "brand13", "brand21",
                                          "brand22", "brand23", "brand31", "brand32",
                                          "brand33", "brand41"};
const std::vector<std::string> kContainers = {"jumbo-bag", "lg-box", "med-case",
                                              "sm-drum", "wrap-jar"};
const std::vector<std::string> kFlags = {"A", "N", "R"};

/// One of 22 join-graph templates. Predicates are drawn uniformly per query
/// instance (uniform data -> uniform parameters, the TPC-H way).
void BuildTemplate(QueryBuilder& b, int tmpl, util::Rng& rng) {
  auto date_range = [&](const char* table, const char* col) {
    const int64_t lo = rng.NextInt(0, 2000);
    b.Pred(table, col, PredOp::kGe, lo);
    b.Pred(table, col, PredOp::kLe, lo + rng.NextInt(60, 400));
  };
  auto qty_pred = [&] {
    b.Pred("lineitem", "l_quantity", PredOp::kLe, rng.NextInt(10, 45));
  };
  auto seg_pred = [&] {
    b.PredStr("customer", "c_mktsegment", PredOp::kEq,
              kSegments[rng.NextBounded(kSegments.size())]);
  };
  auto brand_pred = [&] {
    b.PredStr("part", "p_brand", PredOp::kEq, kBrands[rng.NextBounded(kBrands.size())]);
  };

  switch (tmpl) {
    case 0:  // Q1-style: lineitem + orders scan-heavy
      b.JoinFk("lineitem", "orders");
      date_range("lineitem", "l_shipdate");
      b.PredStr("lineitem", "l_returnflag", PredOp::kEq,
                kFlags[rng.NextBounded(kFlags.size())]);
      break;
    case 1:  // Q3-style: customer/orders/lineitem
      b.JoinFk("lineitem", "orders").JoinFk("orders", "customer");
      seg_pred();
      date_range("orders", "o_orderdate");
      break;
    case 2:  // Q4-style
      b.JoinFk("lineitem", "orders");
      date_range("orders", "o_orderdate");
      b.PredStr("orders", "o_orderpriority", PredOp::kEq,
                kPriorities[rng.NextBounded(kPriorities.size())]);
      break;
    case 3:  // Q5-style chain to region
      b.JoinFk("lineitem", "orders")
          .JoinFk("orders", "customer")
          .JoinFk("customer", "nation")
          .JoinFk("nation", "region");
      b.Pred("region", "r_regionkey", PredOp::kEq, rng.NextInt(0, 4));
      date_range("orders", "o_orderdate");
      break;
    case 4:  // Q6-style single-join selective
      b.JoinFk("lineitem", "orders");
      date_range("lineitem", "l_shipdate");
      qty_pred();
      b.Pred("lineitem", "l_discount", PredOp::kGe, rng.NextInt(2, 8));
      break;
    case 5:  // part/lineitem
      b.JoinFk("lineitem", "part");
      brand_pred();
      qty_pred();
      break;
    case 6:  // supplier path
      b.JoinFk("lineitem", "supplier").JoinFk("supplier", "nation");
      b.Pred("nation", "n_nationkey", PredOp::kEq, rng.NextInt(0, 24));
      date_range("lineitem", "l_shipdate");
      break;
    case 7:  // partsupp/part
      b.JoinFk("partsupp", "part");
      brand_pred();
      b.Pred("partsupp", "ps_supplycost", PredOp::kLe, rng.NextInt(100, 900));
      break;
    case 8:  // partsupp/supplier/nation
      b.JoinFk("partsupp", "supplier").JoinFk("supplier", "nation");
      b.Pred("nation", "n_regionkey", PredOp::kEq, rng.NextInt(0, 4));
      break;
    case 9:  // customer/orders only
      b.JoinFk("orders", "customer");
      seg_pred();
      b.Pred("orders", "o_totalprice", PredOp::kGe, rng.NextInt(100000, 400000));
      break;
    case 10:  // Q10-style: returns by customer nation
      b.JoinFk("lineitem", "orders")
          .JoinFk("orders", "customer")
          .JoinFk("customer", "nation");
      b.PredStr("lineitem", "l_returnflag", PredOp::kEq, "R");
      date_range("orders", "o_orderdate");
      break;
    case 11:  // customer/nation/region
      b.JoinFk("customer", "nation").JoinFk("nation", "region");
      b.Pred("region", "r_regionkey", PredOp::kEq, rng.NextInt(0, 4));
      b.Pred("customer", "c_acctbal", PredOp::kGe, rng.NextInt(0, 5000));
      break;
    case 12:  // Q12-style shipmode/priority
      b.JoinFk("lineitem", "orders");
      date_range("lineitem", "l_shipdate");
      b.PredStr("orders", "o_orderpriority", PredOp::kNeq, kPriorities[4]);
      break;
    case 13:  // 4-way with part
      b.JoinFk("lineitem", "orders").JoinFk("orders", "customer").JoinFk("lineitem",
                                                                         "part");
      brand_pred();
      seg_pred();
      break;
    case 14:  // Q14-style part promo
      b.JoinFk("lineitem", "part");
      date_range("lineitem", "l_shipdate");
      b.PredStr("part", "p_type", PredOp::kContains, "steel");
      break;
    case 15:  // supplier revenue
      b.JoinFk("lineitem", "supplier");
      date_range("lineitem", "l_shipdate");
      b.Pred("supplier", "s_acctbal", PredOp::kGe, rng.NextInt(0, 5000));
      break;
    case 16:  // Q16-style partsupp/part attributes
      b.JoinFk("partsupp", "part");
      b.PredStr("part", "p_container", PredOp::kEq,
                kContainers[rng.NextBounded(kContainers.size())]);
      b.Pred("part", "p_size", PredOp::kLe, rng.NextInt(10, 40));
      break;
    case 17:  // Q17-style small-quantity parts
      b.JoinFk("lineitem", "part");
      brand_pred();
      b.PredStr("part", "p_container", PredOp::kEq,
                kContainers[rng.NextBounded(kContainers.size())]);
      b.Pred("lineitem", "l_quantity", PredOp::kLt, rng.NextInt(3, 10));
      break;
    case 18:  // Q18-style big orders
      b.JoinFk("lineitem", "orders").JoinFk("orders", "customer");
      b.Pred("orders", "o_totalprice", PredOp::kGe, rng.NextInt(300000, 480000));
      break;
    case 19:  // Q19-style brand+container+qty
      b.JoinFk("lineitem", "part");
      brand_pred();
      qty_pred();
      b.Pred("part", "p_size", PredOp::kGe, rng.NextInt(1, 15));
      break;
    case 20:  // Q20/21-style supplier chain, 5-way
      b.JoinFk("lineitem", "orders")
          .JoinFk("lineitem", "supplier")
          .JoinFk("supplier", "nation");
      b.Pred("nation", "n_regionkey", PredOp::kEq, rng.NextInt(0, 4));
      b.PredStr("orders", "o_orderpriority", PredOp::kEq,
                kPriorities[rng.NextBounded(2)]);
      break;
    case 21:  // 6-way: full customer chain + part
    default:
      b.JoinFk("lineitem", "orders")
          .JoinFk("orders", "customer")
          .JoinFk("customer", "nation")
          .JoinFk("nation", "region")
          .JoinFk("lineitem", "part");
      b.Pred("region", "r_regionkey", PredOp::kEq, rng.NextInt(0, 4));
      brand_pred();
      break;
  }
}

}  // namespace

Workload MakeTpchWorkload(const catalog::Schema& schema, const storage::Database& db,
                          uint64_t seed, int queries_per_template) {
  Workload wl("TPC-H");
  util::Rng rng(seed);
  for (int tmpl = 0; tmpl < 22; ++tmpl) {
    for (int v = 0; v < queries_per_template; ++v) {
      util::Rng qrng = rng.Fork(static_cast<uint64_t>(tmpl * 100 + v));
      QueryBuilder b(schema, db, util::StrFormat("tpch%02d_%d", tmpl + 1, v));
      BuildTemplate(b, tmpl, qrng);
      wl.Add(b.Build());
    }
  }
  return wl;
}

WorkloadSplit SplitByTemplate(const Workload& workload, int test_templates,
                              uint64_t seed) {
  // Template id = name up to the final '_'.
  auto template_of = [](const std::string& name) {
    const size_t pos = name.rfind('_');
    return name.substr(0, pos);
  };
  std::set<std::string> templates;
  for (const auto& q : workload.queries()) templates.insert(template_of(q.name));
  std::vector<std::string> tmpl_list(templates.begin(), templates.end());
  util::Rng rng(seed);
  rng.Shuffle(tmpl_list);
  std::set<std::string> test_set(
      tmpl_list.begin(),
      tmpl_list.begin() + std::min<size_t>(static_cast<size_t>(test_templates),
                                           tmpl_list.size()));
  WorkloadSplit split;
  for (const auto& q : workload.queries()) {
    (test_set.count(template_of(q.name)) ? split.test : split.train).push_back(&q);
  }
  return split;
}

}  // namespace neo::query
