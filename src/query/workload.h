// A workload is a named set of queries plus deterministic train/test
// splitting (paper §6.1: 80% train / 20% test).
#pragma once

#include <string>
#include <vector>

#include "src/query/query.h"
#include "src/util/rng.h"

namespace neo::query {

struct WorkloadSplit {
  std::vector<const Query*> train;
  std::vector<const Query*> test;
};

class Workload {
 public:
  explicit Workload(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return queries_.size(); }
  const Query& query(size_t i) const { return queries_[i]; }
  const std::vector<Query>& queries() const { return queries_; }

  Query& Add(Query q) {
    q.id = static_cast<int>(queries_.size()) + id_offset_;
    queries_.push_back(std::move(q));
    return queries_.back();
  }

  /// Makes query ids start at `offset` (avoid per-query-id collisions when
  /// mixing workloads, e.g. JOB + Ext-JOB baselines). Call before Add.
  void SetIdOffset(int offset) { id_offset_ = offset; }

  /// Deterministic shuffled split; `train_fraction` of queries go to train.
  WorkloadSplit Split(double train_fraction, uint64_t seed) const;

  /// All queries as pointers (e.g. to evaluate on the full suite).
  std::vector<const Query*> All() const;

 private:
  std::string name_;
  std::vector<Query> queries_;
  int id_offset_ = 0;
};

}  // namespace neo::query
