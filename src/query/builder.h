// Fluent builder for constructing queries against a schema + database.
// Resolves string literals to dictionary codes and auto-discovers FK join
// edges, so workload generators stay declarative.
#pragma once

#include <string>

#include "src/query/query.h"
#include "src/storage/table.h"

namespace neo::query {

class QueryBuilder {
 public:
  QueryBuilder(const catalog::Schema& schema, const storage::Database& db,
               std::string name);

  /// Adds a relation (idempotent).
  QueryBuilder& Rel(const std::string& table);

  /// Adds the FK join edge between two tables (must exist in the schema);
  /// adds both relations.
  QueryBuilder& JoinFk(const std::string& table_a, const std::string& table_b);

  /// Integer predicate, e.g. Pred("title", "production_year", PredOp::kGe, 2000).
  QueryBuilder& Pred(const std::string& table, const std::string& column, PredOp op,
                     int64_t value);

  /// String predicate; Eq literals are resolved against the dictionary
  /// (missing values yield code -1, matching nothing), kContains keeps the
  /// needle for LIKE-style evaluation.
  QueryBuilder& PredStr(const std::string& table, const std::string& column, PredOp op,
                        const std::string& value);

  /// Finalizes (validates connectivity) and returns the query.
  Query Build();

 private:
  const catalog::Schema& schema_;
  const storage::Database& db_;
  Query query_;
};

}  // namespace neo::query
