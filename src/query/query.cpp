#include "src/query/query.h"

#include <algorithm>
#include <functional>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"

namespace neo::query {

const char* PredOpName(PredOp op) {
  switch (op) {
    case PredOp::kEq: return "=";
    case PredOp::kNeq: return "<>";
    case PredOp::kLt: return "<";
    case PredOp::kLe: return "<=";
    case PredOp::kGt: return ">";
    case PredOp::kGe: return ">=";
    case PredOp::kContains: return "LIKE";
  }
  return "?";
}

int Query::RelationIndex(int table_id) const {
  for (size_t i = 0; i < relations.size(); ++i) {
    if (relations[i] == table_id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Predicate> Query::PredicatesOn(int table_id) const {
  std::vector<Predicate> out;
  for (const auto& p : predicates) {
    if (p.table_id == table_id) out.push_back(p);
  }
  return out;
}

std::vector<JoinEdge> Query::JoinsBetween(int table_a, int table_b) const {
  std::vector<JoinEdge> out;
  for (const auto& j : joins) {
    if ((j.left_table == table_a && j.right_table == table_b) ||
        (j.left_table == table_b && j.right_table == table_a)) {
      out.push_back(j);
    }
  }
  return out;
}

bool Query::SubsetConnected(uint64_t mask) const {
  if (mask == 0) return false;
  const int n = static_cast<int>(relations.size());
  // BFS from the lowest set bit over join edges restricted to `mask`.
  int start = -1;
  for (int i = 0; i < n; ++i) {
    if (mask & (1ULL << i)) {
      start = i;
      break;
    }
  }
  uint64_t visited = 1ULL << start;
  std::vector<int> frontier{start};
  while (!frontier.empty()) {
    const int cur = frontier.back();
    frontier.pop_back();
    const int cur_table = relations[static_cast<size_t>(cur)];
    for (const JoinEdge& j : joins) {
      if (!j.Touches(cur_table)) continue;
      const int other_table = j.left_table == cur_table ? j.right_table : j.left_table;
      const int other = RelationIndex(other_table);
      if (other < 0) continue;
      const uint64_t bit = 1ULL << other;
      if ((mask & bit) && !(visited & bit)) {
        visited |= bit;
        frontier.push_back(other);
      }
    }
  }
  return visited == mask;
}

bool Query::MasksJoinable(uint64_t mask_a, uint64_t mask_b) const {
  for (const JoinEdge& j : joins) {
    const int li = RelationIndex(j.left_table);
    const int ri = RelationIndex(j.right_table);
    if (li < 0 || ri < 0) continue;
    const uint64_t lbit = 1ULL << li;
    const uint64_t rbit = 1ULL << ri;
    if (((mask_a & lbit) && (mask_b & rbit)) || ((mask_a & rbit) && (mask_b & lbit))) {
      return true;
    }
  }
  return false;
}

void Query::Finalize(const catalog::Schema& schema) {
  std::sort(relations.begin(), relations.end());
  relations.erase(std::unique(relations.begin(), relations.end()), relations.end());
  NEO_CHECK_MSG(relations.size() <= 20, "query too wide for 64-bit masks");
  for (const auto& j : joins) {
    NEO_CHECK(UsesTable(j.left_table) && UsesTable(j.right_table));
    (void)schema;
  }
  for (const auto& p : predicates) {
    NEO_CHECK(UsesTable(p.table_id));
  }
  if (relations.size() > 1) {
    const uint64_t all = (relations.size() == 64)
                             ? ~0ULL
                             : ((1ULL << relations.size()) - 1);
    NEO_CHECK_MSG(SubsetConnected(all), ("disconnected join graph: " + name).c_str());
  }

  uint64_t h = util::Mix64(0xf17e + relations.size());
  uint64_t th = util::Mix64(0x717e + relations.size());
  for (int r : relations) {
    h = util::HashCombine(h, util::Mix64(static_cast<uint64_t>(r)));
    th = util::HashCombine(th, util::Mix64(static_cast<uint64_t>(r)));
  }
  for (const auto& j : joins) {
    const uint64_t jh =
        util::Mix64((static_cast<uint64_t>(j.left_table) << 40) ^
                    (static_cast<uint64_t>(j.left_column) << 28) ^
                    (static_cast<uint64_t>(j.right_table) << 14) ^
                    static_cast<uint64_t>(j.right_column));
    h = util::HashCombine(h, jh);
    th = util::HashCombine(th, jh);
  }
  for (const auto& p : predicates) {
    const uint64_t shape = (static_cast<uint64_t>(p.table_id) << 40) ^
                           (static_cast<uint64_t>(p.column_idx) << 28) ^
                           (static_cast<uint64_t>(p.op) << 20);
    h = util::HashCombine(
        h, util::Mix64(shape ^ static_cast<uint64_t>(p.value_code + (1 << 19))));
    h = util::HashCombine(h, util::Mix64(std::hash<std::string>{}(p.value_str)));
    // The type hash keeps the predicate's shape (table, column, operator,
    // string-ness) but not its literal: queries differing only in constants
    // must collide here.
    th = util::HashCombine(
        th, util::Mix64(shape ^ (p.is_string ? (1ULL << 19) : 0ULL)));
  }
  fingerprint = h;
  type_hash = th;
}

std::string Query::ToSql(const catalog::Schema& schema) const {
  std::vector<std::string> froms;
  for (int t : relations) froms.push_back(schema.table(t).name);
  std::vector<std::string> conds;
  for (const auto& j : joins) {
    conds.push_back(util::StrFormat(
        "%s.%s = %s.%s", schema.table(j.left_table).name.c_str(),
        schema.table(j.left_table).columns[static_cast<size_t>(j.left_column)].name.c_str(),
        schema.table(j.right_table).name.c_str(),
        schema.table(j.right_table)
            .columns[static_cast<size_t>(j.right_column)]
            .name.c_str()));
  }
  for (const auto& p : predicates) {
    const auto& col =
        schema.table(p.table_id).columns[static_cast<size_t>(p.column_idx)];
    std::string rhs;
    if (p.op == PredOp::kContains) {
      rhs = "'%" + p.value_str + "%'";
    } else if (p.is_string) {
      rhs = "'" + p.value_str + "'";
    } else {
      rhs = util::StrFormat("%lld", static_cast<long long>(p.value_code));
    }
    conds.push_back(util::StrFormat("%s.%s %s %s", schema.table(p.table_id).name.c_str(),
                                    col.name.c_str(), PredOpName(p.op), rhs.c_str()));
  }
  std::string sql = "SELECT count(*) FROM " + util::Join(froms, ", ");
  if (!conds.empty()) sql += " WHERE " + util::Join(conds, " AND ");
  return sql + ";";
}

}  // namespace neo::query
