#include "src/query/workload.h"

#include <numeric>

namespace neo::query {

WorkloadSplit Workload::Split(double train_fraction, uint64_t seed) const {
  std::vector<size_t> order(queries_.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  rng.Shuffle(order);
  const size_t n_train = static_cast<size_t>(
      static_cast<double>(queries_.size()) * train_fraction + 0.5);
  WorkloadSplit split;
  for (size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? split.train : split.test).push_back(&queries_[order[i]]);
  }
  return split;
}

std::vector<const Query*> Workload::All() const {
  std::vector<const Query*> out;
  out.reserve(queries_.size());
  for (const auto& q : queries_) out.push_back(&q);
  return out;
}

}  // namespace neo::query
