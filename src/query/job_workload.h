// JOB-like workload over the IMDB-like dataset (paper §6.1).
//
// 33 query families x 4 variants (a-d), mirroring the Join Order Benchmark's
// structure: fixed join graphs per family, predicate literals varying per
// variant. Predicates deliberately mix genre/keyword and country/person
// correlations so that histogram + independence estimation is wrong by
// orders of magnitude on some queries (the JOB pathology Neo must learn).
//
// MakeExtJobWorkload builds the paper's Ext-JOB set (§6.4.2): 24 queries
// with join graphs and predicate combinations that never occur in JOB
// (semantically distinct; used to test generalization to novel queries).
#pragma once

#include "src/query/workload.h"
#include "src/storage/table.h"

namespace neo::query {

Workload MakeJobWorkload(const catalog::Schema& schema, const storage::Database& db,
                         uint64_t seed = 1234);

Workload MakeExtJobWorkload(const catalog::Schema& schema, const storage::Database& db,
                            uint64_t seed = 4321);

}  // namespace neo::query
