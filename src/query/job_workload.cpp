#include "src/query/job_workload.h"

#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::query {

namespace {

// The IMDB-like join graph is a star around `title` with four arms:
//   MI: movie_info -> title, movie_info -> info_type
//   MK: movie_keyword -> title, movie_keyword -> keyword
//   CI: cast_info -> title, cast_info -> name
//   MC: movie_companies -> title, movie_companies -> company_name
enum Arm : int { kMI = 1, kMK = 2, kCI = 4, kMC = 8 };

void AddArms(QueryBuilder& b, int arms) {
  if (arms & kMI) b.JoinFk("movie_info", "title").JoinFk("movie_info", "info_type");
  if (arms & kMK) b.JoinFk("movie_keyword", "title").JoinFk("movie_keyword", "keyword");
  if (arms & kCI) b.JoinFk("cast_info", "title").JoinFk("cast_info", "name");
  if (arms & kMC) {
    b.JoinFk("movie_companies", "title").JoinFk("movie_companies", "company_name");
  }
}

/// Predicate "theme" controlling which templates a family draws from.
enum class Theme { kGenre, kCountry, kYear, kPopularity, kMixed };

/// Adds variant-specific predicates. `aligned` chooses keyword stems from
/// the same genre as the mi.info genre predicate (correlated, large result);
/// otherwise from a different genre (anti-correlated, tiny result).
void AddPredicates(QueryBuilder& b, int arms, Theme theme, util::Rng& rng) {
  const auto& genres = datagen::ImdbGenreNames();
  const auto& countries = datagen::ImdbCountryNames();
  const int genre = static_cast<int>(rng.NextBounded(genres.size()));
  const int country = static_cast<int>(rng.NextBounded(countries.size()));
  const bool aligned = rng.NextBool(0.5);

  const bool use_genre =
      (arms & kMI) && (theme == Theme::kGenre || theme == Theme::kMixed);
  const bool use_country =
      (arms & kMI) && theme == Theme::kCountry && !use_genre;

  if (use_genre) {
    b.PredStr("info_type", "info", PredOp::kEq, "genres");
    b.PredStr("movie_info", "info", PredOp::kEq, genres[static_cast<size_t>(genre)]);
  } else if (use_country) {
    b.PredStr("info_type", "info", PredOp::kEq, "country");
    b.PredStr("movie_info", "info", PredOp::kEq,
              countries[static_cast<size_t>(country)]);
  } else if (arms & kMI) {
    // Keep the arm non-trivial: restrict info_type only.
    b.PredStr("info_type", "info", PredOp::kEq,
              rng.NextBool(0.5) ? "rating" : "budget");
  }

  if (arms & kMK) {
    const int kw_genre = aligned && use_genre
                             ? genre
                             : static_cast<int>(rng.NextBounded(genres.size()));
    const auto& stems = datagen::ImdbKeywordStems(kw_genre);
    b.PredStr("keyword", "keyword", PredOp::kContains,
              stems[rng.NextBounded(stems.size())]);
  }

  if (arms & kCI) {
    if (theme == Theme::kCountry || rng.NextBool(0.4)) {
      b.PredStr("name", "birth_country", PredOp::kEq,
                countries[static_cast<size_t>(
                    aligned ? country : rng.NextBounded(countries.size()))]);
    } else {
      b.Pred("name", "gender", PredOp::kEq, static_cast<int64_t>(rng.NextBounded(2)));
    }
  }

  if (arms & kMC) {
    b.PredStr("company_name", "country_code", PredOp::kEq,
              countries[static_cast<size_t>(
                  aligned ? country : rng.NextBounded(countries.size()))]);
  }

  if (theme == Theme::kYear || (theme == Theme::kMixed && rng.NextBool(0.5))) {
    const int64_t lo = 1950 + static_cast<int64_t>(rng.NextBounded(50));
    b.Pred("title", "production_year", PredOp::kGe, lo);
    if (rng.NextBool(0.5)) {
      b.Pred("title", "production_year", PredOp::kLe, lo + 10 + rng.NextInt(0, 25));
    }
  }
  if (theme == Theme::kPopularity) {
    b.Pred("title", "popularity", PredOp::kLe, rng.NextInt(1, 4));
  }
  if (theme == Theme::kMixed && rng.NextBool(0.3)) {
    b.Pred("title", "kind_id", PredOp::kEq, rng.NextInt(0, 2));
  }
}

struct Family {
  int arms;
  Theme theme;
};

/// 33 families: all 15 arm subsets with mixed predicates, then re-themed
/// repeats of the most interesting graphs (mirrors how JOB reuses join
/// graphs across families with different predicates).
std::vector<Family> JobFamilies() {
  std::vector<Family> fams;
  for (int arms = 1; arms <= 15; ++arms) fams.push_back({arms, Theme::kMixed});
  const std::vector<int> repeat = {kMI | kMK, kMI | kCI, kMK | kCI, kMI | kMK | kCI,
                                   kMI | kMC, kMK | kMC, kCI | kMC,
                                   kMI | kMK | kMC, kMI | kCI | kMC};
  for (int arms : repeat) fams.push_back({arms, Theme::kGenre});
  fams.push_back({kMI | kCI, Theme::kCountry});
  fams.push_back({kMI | kMC, Theme::kCountry});
  fams.push_back({kCI | kMC, Theme::kCountry});
  fams.push_back({kMI | kMK, Theme::kYear});
  fams.push_back({kMI | kMK | kCI | kMC, Theme::kYear});
  fams.push_back({kMK | kCI, Theme::kPopularity});
  fams.push_back({kMI | kMK | kCI, Theme::kPopularity});
  fams.push_back({kMI | kMK | kCI | kMC, Theme::kGenre});
  fams.push_back({kMI, Theme::kCountry});
  return fams;  // 15 + 9 + 3 + 2 + 2 + 2 = 33
}

}  // namespace

Workload MakeJobWorkload(const catalog::Schema& schema, const storage::Database& db,
                         uint64_t seed) {
  Workload wl("JOB");
  const std::vector<Family> families = JobFamilies();
  util::Rng rng(seed);
  const char* variants = "abcd";
  for (size_t f = 0; f < families.size(); ++f) {
    for (int v = 0; v < 4; ++v) {
      util::Rng qrng = rng.Fork(f * 16 + static_cast<size_t>(v));
      QueryBuilder b(schema, db,
                     util::StrFormat("job_%zu%c", f + 1, variants[v]));
      b.Rel("title");
      AddArms(b, families[f].arms);
      AddPredicates(b, families[f].arms, families[f].theme, qrng);
      wl.Add(b.Build());
    }
  }
  return wl;
}

Workload MakeExtJobWorkload(const catalog::Schema& schema, const storage::Database& db,
                            uint64_t seed) {
  // Novel join graphs / predicate combinations: arm subsets are reused (the
  // schema only has four arms) but predicates use templates JOB never emits
  // (rating/budget equality on movie_info, Contains on movie_info.info,
  // Neq predicates, popularity+country conjunctions), making the queries
  // semantically distinct from every JOB query.
  Workload wl("Ext-JOB");
  wl.SetIdOffset(100000);  // Never collide with JOB query ids.
  util::Rng rng(seed);
  const auto& genres = datagen::ImdbGenreNames();
  const auto& countries = datagen::ImdbCountryNames();

  const std::vector<int> graphs = {kMI,        kMK,          kCI,          kMC,
                                   kMI | kMK,  kMI | kCI,    kMK | kMC,    kCI | kMC,
                                   kMI | kMC,  kMK | kCI,    kMI | kMK | kCI,
                                   kMI | kMK | kMC, kMI | kCI | kMC, kMK | kCI | kMC,
                                   kMI | kMK | kCI | kMC};

  for (int i = 0; i < 24; ++i) {
    util::Rng qrng = rng.Fork(static_cast<uint64_t>(i) + 100);
    const int arms = graphs[static_cast<size_t>(i) % graphs.size()];
    QueryBuilder b(schema, db, util::StrFormat("extjob_%02d", i + 1));
    b.Rel("title");
    AddArms(b, arms);

    // Novel predicate templates.
    switch (i % 6) {
      case 0:
        if (arms & kMI) {
          b.PredStr("info_type", "info", PredOp::kEq, "rating");
          b.PredStr("movie_info", "info", PredOp::kEq,
                    util::StrFormat("r%d", static_cast<int>(qrng.NextBounded(4))));
        }
        b.Pred("title", "popularity", PredOp::kGe, 5);
        break;
      case 1:
        if (arms & kMI) {
          b.PredStr("info_type", "info", PredOp::kEq, "budget");
          b.PredStr("movie_info", "info", PredOp::kEq,
                    util::StrFormat("b%d", static_cast<int>(qrng.NextBounded(8))));
        }
        if (arms & kMK) {
          const auto& stems = datagen::ImdbKeywordStems(
              static_cast<int>(qrng.NextBounded(genres.size())));
          b.PredStr("keyword", "keyword", PredOp::kContains, stems[0]);
        }
        break;
      case 2:
        if (arms & kMI) {
          b.PredStr("info_type", "info", PredOp::kEq, "genres");
          b.PredStr("movie_info", "info", PredOp::kNeq,
                    genres[qrng.NextBounded(genres.size())]);
        }
        b.Pred("title", "kind_id", PredOp::kNeq, 1);
        break;
      case 3:
        if (arms & kCI) {
          b.PredStr("name", "birth_country", PredOp::kEq,
                    countries[qrng.NextBounded(3)]);
          b.Pred("name", "gender", PredOp::kEq,
                 static_cast<int64_t>(qrng.NextBounded(2)));
        }
        if (arms & kMC) {
          b.PredStr("company_name", "country_code", PredOp::kEq,
                    countries[qrng.NextBounded(3)]);
        }
        b.Pred("title", "production_year", PredOp::kLt, 1975);
        break;
      case 4:
        if (arms & kMI) {
          b.PredStr("info_type", "info", PredOp::kEq, "country");
          b.PredStr("movie_info", "info", PredOp::kContains, "an");  // multi-match
        }
        if (arms & kMK) {
          const auto& stems = datagen::ImdbKeywordStems(
              static_cast<int>(qrng.NextBounded(genres.size())));
          b.PredStr("keyword", "keyword", PredOp::kContains,
                    stems[qrng.NextBounded(stems.size())]);
        }
        break;
      case 5:
      default:
        b.Pred("title", "popularity", PredOp::kEq,
               static_cast<int64_t>(qrng.NextBounded(10)));
        b.Pred("title", "production_year", PredOp::kGe, 1990);
        if (arms & kCI) {
          b.PredStr("name", "birth_country", PredOp::kNeq, countries[0]);
        }
        break;
    }
    wl.Add(b.Build());
  }
  return wl;
}

}  // namespace neo::query
