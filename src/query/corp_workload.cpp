#include "src/query/corp_workload.h"

#include "src/query/builder.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace neo::query {

namespace {

const std::vector<std::string> kSegments = {"enterprise", "smb", "consumer",
                                            "education", "government"};
const std::vector<std::string> kCategories = {"analytics", "storage",  "compute",
                                              "network",   "security", "ml",
                                              "mobile",    "search"};
const std::vector<std::string> kTiers = {"free", "basic", "pro", "enterprise"};
const std::vector<std::string> kZones = {"amer", "emea", "apac"};
const std::vector<std::string> kMediums = {"web", "mobile", "api", "partner"};
const std::vector<std::string> kCountries = {"us", "de", "jp", "br", "in",
                                             "fr", "uk", "au", "ca", "mx"};

void BuildPanel(QueryBuilder& b, int family, util::Rng& rng) {
  auto join_user = [&] { b.JoinFk("fact_events", "dim_user"); };
  auto join_product = [&] { b.JoinFk("fact_events", "dim_product"); };
  auto join_region = [&] { b.JoinFk("fact_events", "dim_region"); };
  auto join_date = [&] { b.JoinFk("fact_events", "dim_date"); };
  auto join_channel = [&] { b.JoinFk("fact_events", "dim_channel"); };

  auto seg = [&] {
    b.PredStr("dim_user", "segment", PredOp::kEq,
              kSegments[rng.NextBounded(kSegments.size())]);
  };
  auto cat = [&] {
    b.PredStr("dim_product", "category", PredOp::kEq,
              kCategories[rng.NextBounded(kCategories.size())]);
  };
  auto quarter = [&] {
    b.Pred("dim_date", "year", PredOp::kEq, rng.NextInt(2017, 2018));
    b.Pred("dim_date", "quarter", PredOp::kEq, rng.NextInt(1, 4));
  };
  auto amount = [&] {
    b.Pred("fact_events", "amount", PredOp::kGe, rng.NextInt(500, 20000));
  };

  switch (family) {
    case 0: join_user(); seg(); amount(); break;
    case 1: join_product(); cat(); amount(); break;
    case 2: join_user(); join_date(); seg(); quarter(); break;
    case 3: join_product(); join_date(); cat(); quarter(); break;
    case 4:
      join_region(); join_date();
      b.PredStr("dim_region", "zone", PredOp::kEq,
                kZones[rng.NextBounded(kZones.size())]);
      quarter();
      break;
    case 5:
      join_channel(); join_user();
      b.PredStr("dim_channel", "medium", PredOp::kEq,
                kMediums[rng.NextBounded(kMediums.size())]);
      seg();
      break;
    case 6:
      join_user(); join_product(); seg(); cat();
      break;
    case 7:
      join_user(); join_product(); join_date(); seg(); cat(); quarter();
      break;
    case 8:
      join_user();
      b.PredStr("dim_user", "country", PredOp::kEq,
                kCountries[rng.NextBounded(kCountries.size())]);
      b.Pred("dim_user", "signup_year", PredOp::kGe, rng.NextInt(2012, 2018));
      break;
    case 9:
      join_product(); join_channel(); cat();
      b.PredStr("dim_product", "price_tier", PredOp::kEq,
                kTiers[rng.NextBounded(kTiers.size())]);
      break;
    case 10:
      join_user(); join_region(); join_date(); join_channel();
      seg(); quarter();
      b.PredStr("dim_channel", "medium", PredOp::kEq,
                kMediums[rng.NextBounded(kMediums.size())]);
      break;
    case 11:
    default:
      join_user(); join_product(); join_region(); join_date(); join_channel();
      seg(); cat(); quarter(); amount();
      break;
  }
}

}  // namespace

Workload MakeCorpWorkload(const catalog::Schema& schema, const storage::Database& db,
                          uint64_t seed, int queries_per_family) {
  Workload wl("Corp");
  util::Rng rng(seed);
  for (int family = 0; family < 12; ++family) {
    for (int v = 0; v < queries_per_family; ++v) {
      util::Rng qrng = rng.Fork(static_cast<uint64_t>(family * 1000 + v));
      QueryBuilder b(schema, db, util::StrFormat("corp%02d_%d", family + 1, v));
      b.Rel("fact_events");
      BuildPanel(b, family, qrng);
      wl.Add(b.Build());
    }
  }
  return wl;
}

}  // namespace neo::query
