#include "src/query/builder.h"

#include <algorithm>

#include "src/util/status.h"

namespace neo::query {

QueryBuilder::QueryBuilder(const catalog::Schema& schema, const storage::Database& db,
                           std::string name)
    : schema_(schema), db_(db) {
  query_.name = std::move(name);
}

QueryBuilder& QueryBuilder::Rel(const std::string& table) {
  const int id = schema_.TableId(table);
  if (std::find(query_.relations.begin(), query_.relations.end(), id) ==
      query_.relations.end()) {
    query_.relations.push_back(id);
  }
  return *this;
}

QueryBuilder& QueryBuilder::JoinFk(const std::string& table_a,
                                   const std::string& table_b) {
  Rel(table_a);
  Rel(table_b);
  const int a = schema_.TableId(table_a);
  const int b = schema_.TableId(table_b);
  catalog::ForeignKey fk;
  NEO_CHECK_MSG(schema_.FindJoinEdge(a, b, &fk), (table_a + "<->" + table_b).c_str());
  JoinEdge edge;
  edge.left_table = fk.from_table;
  edge.left_column = fk.from_column;
  edge.right_table = fk.to_table;
  edge.right_column = fk.to_column;
  query_.joins.push_back(edge);
  return *this;
}

QueryBuilder& QueryBuilder::Pred(const std::string& table, const std::string& column,
                                 PredOp op, int64_t value) {
  Rel(table);
  Predicate p;
  p.table_id = schema_.TableId(table);
  p.column_idx = schema_.TableByName(table).ColumnIndex(column);
  NEO_CHECK_MSG(p.column_idx >= 0, (table + "." + column).c_str());
  p.op = op;
  p.value_code = value;
  p.is_string = false;
  query_.predicates.push_back(p);
  return *this;
}

QueryBuilder& QueryBuilder::PredStr(const std::string& table, const std::string& column,
                                    PredOp op, const std::string& value) {
  Rel(table);
  Predicate p;
  p.table_id = schema_.TableId(table);
  p.column_idx = schema_.TableByName(table).ColumnIndex(column);
  NEO_CHECK_MSG(p.column_idx >= 0, (table + "." + column).c_str());
  p.op = op;
  p.is_string = true;
  p.value_str = value;
  if (op != PredOp::kContains) {
    const storage::Column& col =
        db_.table(table).column(static_cast<size_t>(p.column_idx));
    p.value_code = col.LookupString(value);  // -1 if absent: matches nothing.
  }
  query_.predicates.push_back(p);
  return *this;
}

Query QueryBuilder::Build() {
  query_.Finalize(schema_);
  return query_;
}

}  // namespace neo::query
