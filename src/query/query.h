// Logical query representation: project-select-equijoin-aggregate queries
// (the class Neo supports, paper §1). A query is a set of base relations, a
// join graph of FK equi-join edges, and single-table filter predicates.
//
// Like the paper, each schema table appears at most once per query (no self
// joins), so "relation" and "table" coincide and the join-graph adjacency
// matrix can be indexed by schema table id (§3.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/catalog/schema.h"

namespace neo::query {

enum class PredOp { kEq, kNeq, kLt, kLe, kGt, kGe, kContains };

const char* PredOpName(PredOp op);
constexpr int kNumPredOps = 7;

/// Single-table filter predicate. String literals keep both the raw text (for
/// printing / LIKE matching / embedding lookup) and the resolved dictionary
/// code (-1 if the value does not occur in the column).
struct Predicate {
  int table_id = -1;
  int column_idx = -1;  ///< Within the table.
  PredOp op = PredOp::kEq;
  int64_t value_code = 0;
  std::string value_str;      ///< Set for string-typed predicates.
  bool is_string = false;
};

/// Equi-join edge between two relations of the query (an FK edge).
struct JoinEdge {
  int left_table = -1;
  int left_column = -1;
  int right_table = -1;
  int right_column = -1;

  bool Touches(int table_id) const {
    return left_table == table_id || right_table == table_id;
  }
};

class Query {
 public:
  Query() = default;

  int id = -1;
  std::string name;                  ///< e.g. "job_17a".
  std::vector<int> relations;        ///< Schema table ids, sorted ascending.
  std::vector<JoinEdge> joins;
  std::vector<Predicate> predicates;
  /// Content hash over relations/joins/predicates, set by Finalize(). Used
  /// as the cache key by the cardinality oracle and the execution engine, so
  /// that structurally identical queries share cache entries and distinct
  /// temporaries never collide.
  uint64_t fingerprint = 0;
  /// Constant-insensitive structural hash, set by Finalize(): like
  /// `fingerprint` but with predicate literal values (value_code / value_str)
  /// dropped, so queries that differ only in their constants share a value —
  /// the "query type" key of the per-type experience store (AQO's notion:
  /// two queries belong to the same type iff they differ only in constants).
  /// Built from util::Mix64/HashCombine only (no std::hash, whose value is
  /// implementation-defined), so it is stable across processes and safe to
  /// persist.
  uint64_t type_hash = 0;

  size_t num_relations() const { return relations.size(); }
  size_t num_joins() const { return joins.size(); }

  /// Position of `table_id` within `relations`, or -1.
  int RelationIndex(int table_id) const;

  bool UsesTable(int table_id) const { return RelationIndex(table_id) >= 0; }

  /// Predicates restricted to one relation.
  std::vector<Predicate> PredicatesOn(int table_id) const;

  /// Join edges between two specific relations.
  std::vector<JoinEdge> JoinsBetween(int table_a, int table_b) const;

  /// True if the relation set `mask` (bit i = relations[i]) induces a
  /// connected subgraph of the join graph.
  bool SubsetConnected(uint64_t mask) const;

  /// True if some join edge connects a relation in `mask_a` to one in
  /// `mask_b` (both masks indexed by position in `relations`).
  bool MasksJoinable(uint64_t mask_a, uint64_t mask_b) const;

  /// Canonicalizes: sorts relations, validates joins/predicates reference
  /// member relations, checks join-graph connectivity over all relations.
  void Finalize(const catalog::Schema& schema);

  /// SQL-ish rendering for logs and docs.
  std::string ToSql(const catalog::Schema& schema) const;
};

}  // namespace neo::query
