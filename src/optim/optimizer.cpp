#include "src/optim/optimizer.h"

#include <algorithm>
#include <unordered_map>

#include "src/engine/latency_model.h"
#include "src/util/status.h"

namespace neo::optim {

namespace {

/// Scan candidates for one relation: table scan always, index scan when
/// usable for this query.
std::vector<plan::NodeRef> ScanCandidates(const catalog::Schema& schema,
                                          const query::Query& query, int rel_pos) {
  const int table_id = query.relations[static_cast<size_t>(rel_pos)];
  const uint64_t bit = 1ULL << rel_pos;
  std::vector<plan::NodeRef> out;
  out.push_back(plan::MakeScan(plan::ScanOp::kTable, table_id, bit));
  if (engine::IndexScanUsable(schema, query, table_id)) {
    out.push_back(plan::MakeScan(plan::ScanOp::kIndex, table_id, bit));
  }
  return out;
}

constexpr plan::JoinOp kAllJoinOps[] = {plan::JoinOp::kHash, plan::JoinOp::kMerge,
                                        plan::JoinOp::kLoop};

struct Candidate {
  double cost;
  plan::NodeRef node;
};

void KeepTopK(std::vector<Candidate>& cands, size_t k) {
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
  // Drop structural duplicates (same hash) keeping the cheapest.
  std::vector<Candidate> unique;
  for (const auto& c : cands) {
    bool dup = false;
    for (const auto& u : unique) {
      if (u.node->hash == c.node->hash) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(c);
    if (unique.size() >= k) break;
  }
  cands = std::move(unique);
}

}  // namespace

plan::PartialPlan DpOptimizer::Optimize(const query::Query& query) {
  const size_t n = query.num_relations();
  NEO_CHECK(n >= 1);
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  std::unordered_map<uint64_t, std::vector<Candidate>> dp;

  // Base: single relations.
  for (size_t i = 0; i < n; ++i) {
    std::vector<Candidate> cands;
    for (auto& scan : ScanCandidates(schema_, query, static_cast<int>(i))) {
      cands.push_back({cost_->CostTree(query, *scan), scan});
    }
    KeepTopK(cands, static_cast<size_t>(plans_per_subset_));
    dp[1ULL << i] = std::move(cands);
  }

  // Masks by increasing population count.
  std::vector<uint64_t> masks;
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcountll(mask) >= 2 && query.SubsetConnected(mask)) {
      masks.push_back(mask);
    }
  }
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    const int pa = __builtin_popcountll(a);
    const int pb = __builtin_popcountll(b);
    return pa < pb || (pa == pb && a < b);
  });

  for (uint64_t mask : masks) {
    std::vector<Candidate> cands;
    // All ordered partitions (left, right): orientation matters (probe/build,
    // outer/inner).
    for (uint64_t left = (mask - 1) & mask; left != 0; left = (left - 1) & mask) {
      const uint64_t right = mask ^ left;
      auto lit = dp.find(left);
      auto rit = dp.find(right);
      if (lit == dp.end() || rit == dp.end()) continue;
      if (!query.MasksJoinable(left, right)) continue;
      for (const Candidate& lc : lit->second) {
        for (const Candidate& rc : rit->second) {
          for (plan::JoinOp op : kAllJoinOps) {
            plan::NodeRef joined = plan::MakeJoin(op, lc.node, rc.node);
            cands.push_back({cost_->CostTree(query, *joined), joined});
          }
        }
      }
    }
    NEO_CHECK_MSG(!cands.empty(), "DP: no plan for connected subset");
    KeepTopK(cands, static_cast<size_t>(plans_per_subset_));
    dp[mask] = std::move(cands);
  }

  plan::PartialPlan result;
  result.query = &query;
  result.roots.push_back(dp[full].front().node);
  return result;
}

plan::PartialPlan GreedyOptimizer::Optimize(const query::Query& query) {
  const size_t n = query.num_relations();
  // Start from the relation with the smallest estimated filtered size.
  int start = 0;
  double best_base = 1e300;
  for (size_t i = 0; i < n; ++i) {
    const double base = cost_->estimator()->EstimateBase(query, query.relations[i]);
    if (base < best_base) {
      best_base = base;
      start = static_cast<int>(i);
    }
  }
  auto pick_scan = [&](int rel_pos) {
    plan::NodeRef best;
    double best_cost = 1e300;
    for (auto& scan : ScanCandidates(schema_, query, rel_pos)) {
      const double c = cost_->CostTree(query, *scan);
      if (c < best_cost) {
        best_cost = c;
        best = scan;
      }
    }
    return best;
  };

  plan::NodeRef current = pick_scan(start);
  uint64_t mask = 1ULL << start;
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);

  while (mask != full) {
    plan::NodeRef best;
    double best_cost = 1e300;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bit = 1ULL << i;
      if (mask & bit) continue;
      if (!query.MasksJoinable(mask, bit)) continue;
      for (auto& scan : ScanCandidates(schema_, query, static_cast<int>(i))) {
        for (plan::JoinOp op : kAllJoinOps) {
          plan::NodeRef joined = plan::MakeJoin(op, current, scan);
          const double c = cost_->CostTree(query, *joined);
          if (c < best_cost) {
            best_cost = c;
            best = joined;
          }
        }
      }
    }
    NEO_CHECK_MSG(best != nullptr, "greedy: stuck (disconnected?)");
    current = best;
    mask = current->rel_mask;
  }

  plan::PartialPlan result;
  result.query = &query;
  result.roots.push_back(current);
  return result;
}

plan::PartialPlan RandomOptimizer::Optimize(const query::Query& query) {
  const size_t n = query.num_relations();
  std::vector<plan::NodeRef> roots;
  for (size_t i = 0; i < n; ++i) {
    auto cands = ScanCandidates(schema_, query, static_cast<int>(i));
    roots.push_back(cands[rng_.NextBounded(cands.size())]);
  }
  while (roots.size() > 1) {
    // Random joinable pair, random operator.
    std::vector<std::pair<size_t, size_t>> joinable;
    for (size_t a = 0; a < roots.size(); ++a) {
      for (size_t b = 0; b < roots.size(); ++b) {
        if (a == b) continue;
        if (query.MasksJoinable(roots[a]->rel_mask, roots[b]->rel_mask)) {
          joinable.emplace_back(a, b);
        }
      }
    }
    NEO_CHECK(!joinable.empty());
    const auto [a, b] = joinable[rng_.NextBounded(joinable.size())];
    const plan::JoinOp op = kAllJoinOps[rng_.NextBounded(3)];
    plan::NodeRef joined = plan::MakeJoin(op, roots[a], roots[b]);
    std::vector<plan::NodeRef> next;
    for (size_t i = 0; i < roots.size(); ++i) {
      if (i != a && i != b) next.push_back(roots[i]);
    }
    next.push_back(joined);
    roots = std::move(next);
  }
  plan::PartialPlan result;
  result.query = &query;
  result.roots = std::move(roots);
  return result;
}

NativeOptimizer MakeNativeOptimizer(engine::EngineKind kind,
                                    const catalog::Schema& schema,
                                    const storage::Database& db) {
  NativeOptimizer native;
  native.stats = std::make_unique<catalog::Statistics>(schema, db);
  const engine::EngineProfile& profile = engine::GetEngineProfile(kind);
  switch (kind) {
    case engine::EngineKind::kPostgres:
      native.estimator = std::make_unique<HistogramEstimator>(schema, *native.stats, db);
      native.cost_model =
          std::make_unique<CostModel>(schema, profile, native.estimator.get());
      native.optimizer = std::make_unique<DpOptimizer>(schema, native.cost_model.get());
      break;
    case engine::EngineKind::kSqlite:
      native.estimator = std::make_unique<HistogramEstimator>(schema, *native.stats, db);
      native.cost_model =
          std::make_unique<CostModel>(schema, profile, native.estimator.get());
      native.optimizer =
          std::make_unique<GreedyOptimizer>(schema, native.cost_model.get());
      break;
    case engine::EngineKind::kMssql:
    case engine::EngineKind::kOracle:
      native.estimator = std::make_unique<SamplingEstimator>(schema, *native.stats, db);
      native.cost_model =
          std::make_unique<CostModel>(schema, profile, native.estimator.get());
      native.optimizer = std::make_unique<DpOptimizer>(schema, native.cost_model.get(),
                                                       /*plans_per_subset=*/4);
      break;
  }
  return native;
}

}  // namespace neo::optim
