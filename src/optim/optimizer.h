// Classical optimizer interface + the per-engine "native optimizer" factory.
//
// These play two roles from the paper:
//   1. the *expert* that bootstraps Neo's experience (§2, "Expertise
//      Collection") — we use the PostgreSQL-like DP + histogram optimizer;
//   2. the *native baselines* each engine is compared against in Fig. 9/10
//      (PostgreSQL, SQLite's simpler greedy planner, and the stronger
//      sampling-based commercial optimizers of MS SQL Server and Oracle).
#pragma once

#include <memory>
#include <string>

#include "src/engine/execution_engine.h"
#include "src/optim/cost_model.h"
#include "src/plan/plan.h"
#include "src/query/query.h"

namespace neo::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Produces a complete physical plan for `query`.
  virtual plan::PartialPlan Optimize(const query::Query& query) = 0;

  virtual std::string name() const = 0;
};

/// Selinger-style dynamic programming over connected subgraphs with physical
/// operator + access path selection. Keeps the top-K plans per relation
/// subset to approximate "interesting orders".
class DpOptimizer : public Optimizer {
 public:
  DpOptimizer(const catalog::Schema& schema, const CostModel* cost_model,
              int plans_per_subset = 3)
      : schema_(schema), cost_(cost_model), plans_per_subset_(plans_per_subset) {}

  plan::PartialPlan Optimize(const query::Query& query) override;
  std::string name() const override { return "dp+" + cost_->estimator()->name(); }

 private:
  const catalog::Schema& schema_;
  const CostModel* cost_;
  int plans_per_subset_;
};

/// SQLite-style greedy left-deep planner: start from the smallest estimated
/// relation, repeatedly add the join (relation, operator, access path) with
/// the lowest incremental cost.
class GreedyOptimizer : public Optimizer {
 public:
  GreedyOptimizer(const catalog::Schema& schema, const CostModel* cost_model)
      : schema_(schema), cost_(cost_model) {}

  plan::PartialPlan Optimize(const query::Query& query) override;
  std::string name() const override { return "greedy+" + cost_->estimator()->name(); }

 private:
  const catalog::Schema& schema_;
  const CostModel* cost_;
};

/// Uniform random complete plans (valid join orders, random operators and
/// access paths). Used by the no-demonstration experiment (§6.3.3) and as a
/// deliberately terrible bootstrap expert for the ablation bench.
class RandomOptimizer : public Optimizer {
 public:
  RandomOptimizer(const catalog::Schema& schema, uint64_t seed)
      : schema_(schema), rng_(seed) {}

  plan::PartialPlan Optimize(const query::Query& query) override;
  std::string name() const override { return "random"; }

 private:
  const catalog::Schema& schema_;
  util::Rng rng_;
};

/// All state backing a native optimizer (estimator + cost model + search).
struct NativeOptimizer {
  std::unique_ptr<catalog::Statistics> stats;
  std::unique_ptr<CardinalityEstimator> estimator;
  std::unique_ptr<CostModel> cost_model;
  std::unique_ptr<Optimizer> optimizer;
};

/// Builds the native optimizer matching an engine:
///   PostgreSQL -> DP + histograms        SQLite -> greedy + histograms
///   SQLServer  -> DP + sampling          Oracle -> DP + sampling
NativeOptimizer MakeNativeOptimizer(engine::EngineKind kind,
                                    const catalog::Schema& schema,
                                    const storage::Database& db);

}  // namespace neo::optim
