// Cardinality estimators used by the classical (expert / native baseline)
// optimizers, spanning the quality spectrum of the paper's systems:
//
//   HistogramEstimator  - per-column histograms + uniformity + independence +
//                         principle of inclusion (PostgreSQL-style; the
//                         expert that bootstraps Neo).
//   SamplingEstimator   - evaluates the query's predicate *conjunction* on a
//                         reservoir sample per table (captures intra-table
//                         correlation, like commercial optimizers' sampled
//                         stats); joins still use the inclusion formula.
//   TrueCardEstimator   - oracle-backed exact cardinalities (upper bound;
//                         used by Fig. 14's "true cardinality" model).
//   ErrorInjectingEstimator - wraps another estimator and multiplies results
//                         by 10^(+/- error) deterministically per subset
//                         (Fig. 14's robustness experiment).
#pragma once

#include <memory>
#include <string>

#include "src/catalog/statistics.h"
#include "src/engine/cardinality_oracle.h"
#include "src/query/query.h"

namespace neo::optim {

class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated filtered row count of one relation of the query.
  virtual double EstimateBase(const query::Query& query, int table_id) = 0;

  /// Estimated join cardinality of a connected relation subset (bit i =
  /// query.relations[i]).
  virtual double EstimateSubset(const query::Query& query, uint64_t mask) = 0;

  /// Estimated selectivity of a single predicate in [0, 1].
  virtual double EstimatePredicate(const query::Query& query,
                                   const query::Predicate& pred) = 0;

  /// Unfiltered row count of a table (known exactly by every estimator).
  virtual double TableRows(int table_id) const = 0;

  virtual std::string name() const = 0;
};

/// Shared join-formula base: subset estimate = product of base estimates,
/// divided per join edge by max(distinct(left key), distinct(right key)).
class FormulaJoinEstimator : public CardinalityEstimator {
 public:
  FormulaJoinEstimator(const catalog::Schema& schema, const catalog::Statistics& stats)
      : schema_(schema), stats_(stats) {}

  double EstimateSubset(const query::Query& query, uint64_t mask) override;
  double TableRows(int table_id) const override {
    return static_cast<double>(stats_.table_rows(table_id));
  }

 protected:
  const catalog::Schema& schema_;
  const catalog::Statistics& stats_;
};

class HistogramEstimator : public FormulaJoinEstimator {
 public:
  HistogramEstimator(const catalog::Schema& schema, const catalog::Statistics& stats,
                     const storage::Database& db)
      : FormulaJoinEstimator(schema, stats), db_(db) {}

  double EstimateBase(const query::Query& query, int table_id) override;
  double EstimatePredicate(const query::Query& query,
                           const query::Predicate& pred) override;
  std::string name() const override { return "histogram"; }

 private:
  const storage::Database& db_;
};

class SamplingEstimator : public FormulaJoinEstimator {
 public:
  SamplingEstimator(const catalog::Schema& schema, const catalog::Statistics& stats,
                    const storage::Database& db)
      : FormulaJoinEstimator(schema, stats), db_(db) {}

  double EstimateBase(const query::Query& query, int table_id) override;
  double EstimatePredicate(const query::Query& query,
                           const query::Predicate& pred) override;
  std::string name() const override { return "sampling"; }

 private:
  const storage::Database& db_;
};

class TrueCardEstimator : public CardinalityEstimator {
 public:
  explicit TrueCardEstimator(engine::CardinalityOracle* oracle) : oracle_(oracle) {}

  double EstimateBase(const query::Query& query, int table_id) override {
    return oracle_->BaseCardinality(query, table_id);
  }
  double EstimateSubset(const query::Query& query, uint64_t mask) override {
    return oracle_->Cardinality(query, mask);
  }
  double EstimatePredicate(const query::Query& query,
                           const query::Predicate& pred) override;
  double TableRows(int table_id) const override {
    return static_cast<double>(oracle_->TableRows(table_id));
  }
  std::string name() const override { return "true"; }

 private:
  engine::CardinalityOracle* oracle_;
};

/// Multiplies the wrapped estimates by 10^(s * error_orders), where the sign
/// s in {-1, +1} is a deterministic function of (query, mask).
class ErrorInjectingEstimator : public CardinalityEstimator {
 public:
  ErrorInjectingEstimator(CardinalityEstimator* inner, double error_orders,
                          uint64_t seed = 0xe44ULL)
      : inner_(inner), error_orders_(error_orders), seed_(seed) {}

  double EstimateBase(const query::Query& query, int table_id) override;
  double EstimateSubset(const query::Query& query, uint64_t mask) override;
  double EstimatePredicate(const query::Query& query,
                           const query::Predicate& pred) override {
    return inner_->EstimatePredicate(query, pred);
  }
  double TableRows(int table_id) const override { return inner_->TableRows(table_id); }
  std::string name() const override { return inner_->name() + "+error"; }

 private:
  double Perturb(double value, uint64_t key) const;
  CardinalityEstimator* inner_;
  double error_orders_;
  uint64_t seed_;
};

}  // namespace neo::optim
