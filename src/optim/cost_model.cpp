#include "src/optim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace neo::optim {

namespace {

double Log2Safe(double x) { return std::log2(std::max(2.0, x)); }

bool IndexSupported(query::PredOp op) {
  using query::PredOp;
  return op == PredOp::kEq || op == PredOp::kLt || op == PredOp::kLe ||
         op == PredOp::kGt || op == PredOp::kGe;
}

}  // namespace

CostModel::NodeCost CostModel::CostNode(const query::Query& query,
                                        const plan::PlanNode& node) const {
  NodeCost result;
  constexpr double kStartup = 50.0;

  if (!node.is_join) {
    const int table_id = node.table_id;
    const catalog::TableInfo& info = schema_.table(table_id);
    const auto preds = query.PredicatesOn(table_id);
    const double n_rows = std::max(1.0, estimator_->TableRows(table_id));
    result.out_card = std::max(1.0, estimator_->EstimateBase(query, table_id));

    if (node.scan_op == plan::ScanOp::kUnspecified) {
      // Partial plans: cost an unspecified scan as the cheaper of its two
      // specializations would be estimated (optimistic, admissible).
      result.work = kStartup + result.out_card * profile_.output_tuple;
      return result;
    }
    if (node.scan_op == plan::ScanOp::kTable) {
      result.work = kStartup +
                    n_rows * (profile_.seq_tuple +
                              profile_.filter_tuple * static_cast<double>(preds.size())) +
                    result.out_card * profile_.output_tuple;
      return result;
    }
    // Index scan: fetch rows matching the most selective indexed predicate.
    double best_sel = 1.0;
    int sort_gid = -1;
    for (const auto& p : preds) {
      if (!IndexSupported(p.op)) continue;
      const auto& col = info.columns[static_cast<size_t>(p.column_idx)];
      if (!col.indexed && info.primary_key != p.column_idx) continue;
      const double sel = std::max(1e-9, estimator_->EstimatePredicate(query, p));
      if (sel < best_sel) {
        best_sel = sel;
        sort_gid = col.global_id;
      }
    }
    const double fetched = n_rows * best_sel;
    result.work = kStartup + profile_.btree_depth * Log2Safe(n_rows) +
                  fetched * (profile_.index_tuple +
                             profile_.filter_tuple * static_cast<double>(preds.size())) +
                  result.out_card * profile_.output_tuple;
    result.sorted_gid = sort_gid;
    return result;
  }

  // ---- Join -------------------------------------------------------------
  const NodeCost left = CostNode(query, *node.left);
  result.out_card =
      std::max(1.0, estimator_->EstimateSubset(query, node.rel_mask));
  const double out = result.out_card;

  // Canonical join edge for sortedness decisions.
  int left_key_gid = -1;
  int right_key_gid = -1;
  int right_key_col = -1;
  int right_leaf_table = node.right->is_join ? -1 : node.right->table_id;
  for (const query::JoinEdge& j : query.joins) {
    const int li = query.RelationIndex(j.left_table);
    const int ri = query.RelationIndex(j.right_table);
    if (li < 0 || ri < 0) continue;
    const uint64_t lbit = 1ULL << li;
    const uint64_t rbit = 1ULL << ri;
    const bool forward =
        (node.left->rel_mask & lbit) && (node.right->rel_mask & rbit);
    const bool backward =
        (node.left->rel_mask & rbit) && (node.right->rel_mask & lbit);
    if (!forward && !backward) continue;
    const int lt = forward ? j.left_table : j.right_table;
    const int lc = forward ? j.left_column : j.right_column;
    const int rt = forward ? j.right_table : j.left_table;
    const int rc = forward ? j.right_column : j.left_column;
    left_key_gid = schema_.table(lt).columns[static_cast<size_t>(lc)].global_id;
    right_key_gid = schema_.table(rt).columns[static_cast<size_t>(rc)].global_id;
    if (rt == right_leaf_table) right_key_col = rc;
    break;
  }

  if (node.join_op == plan::JoinOp::kLoop) {
    // Index nested loop if the inner is an index scan with an indexed join
    // column; per-probe matches from the estimated output.
    if (!node.right->is_join && node.right->scan_op == plan::ScanOp::kIndex &&
        right_key_col >= 0) {
      const catalog::TableInfo& rinfo = schema_.table(right_leaf_table);
      const auto& col = rinfo.columns[static_cast<size_t>(right_key_col)];
      if (col.indexed || rinfo.primary_key == right_key_col) {
        const double inner_rows =
            std::max(1.0, estimator_->EstimateBase(query, right_leaf_table));
        const double fetched = std::max(out, left.out_card);
        result.work = left.work + kStartup +
                      left.out_card * profile_.btree_depth * Log2Safe(inner_rows) +
                      fetched * profile_.index_tuple + out * profile_.output_tuple;
        result.sorted_gid = left.sorted_gid;
        return result;
      }
    }
    const NodeCost right = CostNode(query, *node.right);
    result.work = left.work + right.work + kStartup +
                  left.out_card * right.out_card * profile_.loop_tuple +
                  out * profile_.output_tuple;
    result.sorted_gid = left.sorted_gid;
    return result;
  }

  const NodeCost right = CostNode(query, *node.right);

  if (node.join_op == plan::JoinOp::kHash) {
    double join_work =
        right.out_card * profile_.hash_build + left.out_card * profile_.hash_probe;
    if (right.out_card > profile_.hash_mem_rows) join_work *= profile_.spill_factor;
    result.work =
        left.work + right.work + kStartup + join_work + out * profile_.output_tuple;
    result.sorted_gid = left.sorted_gid;
    return result;
  }

  // Merge join.
  auto sort_cost = [&](const NodeCost& side, int key_gid) {
    if (key_gid >= 0 && side.sorted_gid == key_gid) return 0.0;
    return side.out_card * Log2Safe(side.out_card) * profile_.sort_tuple;
  };
  result.work = left.work + right.work + kStartup + sort_cost(left, left_key_gid) +
                sort_cost(right, right_key_gid) +
                (left.out_card + right.out_card) * profile_.merge_tuple +
                out * profile_.output_tuple;
  result.sorted_gid = left_key_gid;
  return result;
}

double CostModel::CostTree(const query::Query& query, const plan::PlanNode& node) const {
  return CostNode(query, node).work;
}

double CostModel::CostPlan(const query::Query& query,
                           const plan::PartialPlan& plan) const {
  double total = 0.0;
  for (const auto& root : plan.roots) total += CostNode(query, *root).work;
  return total;
}

}  // namespace neo::optim
