#include "src/optim/card_estimator.h"

#include <algorithm>
#include <cmath>

#include "src/engine/predicate_eval.h"
#include "src/util/rng.h"

namespace neo::optim {

double FormulaJoinEstimator::EstimateSubset(const query::Query& query, uint64_t mask) {
  // Product of base estimates ...
  double card = 1.0;
  for (size_t i = 0; i < query.num_relations(); ++i) {
    if (mask & (1ULL << i)) {
      card *= std::max(1.0, EstimateBase(query, query.relations[i]));
    }
  }
  // ... divided per join edge by max distinct count of the key columns
  // (principle of inclusion; assumes key independence, like PostgreSQL).
  for (const query::JoinEdge& j : query.joins) {
    const int li = query.RelationIndex(j.left_table);
    const int ri = query.RelationIndex(j.right_table);
    if (li < 0 || ri < 0) continue;
    if (!(mask & (1ULL << li)) || !(mask & (1ULL << ri))) continue;
    const double dl = static_cast<double>(
        stats_.num_distinct(j.left_table, j.left_column));
    const double dr = static_cast<double>(
        stats_.num_distinct(j.right_table, j.right_column));
    card /= std::max(1.0, std::max(dl, dr));
  }
  return std::max(card, 1e-3);
}

namespace {

/// Histogram-backed selectivity of one predicate (uniformity assumptions).
double HistogramPredicateSelectivity(const catalog::Schema& schema,
                                     const catalog::Statistics& stats,
                                     const storage::Database& db,
                                     const query::Predicate& pred) {
  const catalog::Histogram& h =
      stats.histogram(pred.table_id, pred.column_idx);
  using query::PredOp;
  switch (pred.op) {
    case PredOp::kEq: return h.SelectivityEq(pred.value_code);
    case PredOp::kNeq: return 1.0 - h.SelectivityEq(pred.value_code);
    case PredOp::kLt: return h.SelectivityRange(INT64_MIN, pred.value_code - 1);
    case PredOp::kLe: return h.SelectivityRange(INT64_MIN, pred.value_code);
    case PredOp::kGt: return h.SelectivityRange(pred.value_code + 1, INT64_MAX);
    case PredOp::kGe: return h.SelectivityRange(pred.value_code, INT64_MAX);
    case PredOp::kContains: {
      // PostgreSQL-style LIKE heuristic refined with dictionary knowledge:
      // fraction of *distinct* values matching, assuming uniform value
      // frequency (ignores skew -> a realistic error source).
      const catalog::TableInfo& info = schema.table(pred.table_id);
      const storage::Column& col =
          db.table(info.name).column(static_cast<size_t>(pred.column_idx));
      if (col.dictionary_size() == 0) return 0.005;
      const double matched =
          static_cast<double>(col.CodesContaining(pred.value_str).size());
      return std::min(1.0, matched / static_cast<double>(col.dictionary_size()));
    }
  }
  return 0.1;
}

}  // namespace

double HistogramEstimator::EstimatePredicate(const query::Query& query,
                                             const query::Predicate& pred) {
  (void)query;
  return HistogramPredicateSelectivity(schema_, stats_, db_, pred);
}

double HistogramEstimator::EstimateBase(const query::Query& query, int table_id) {
  const double rows = static_cast<double>(stats_.table_rows(table_id));
  double sel = 1.0;
  for (const query::Predicate& p : query.PredicatesOn(table_id)) {
    sel *= EstimatePredicate(query, p);  // Independence assumption.
  }
  return std::max(rows * sel, 1e-3);
}

double SamplingEstimator::EstimatePredicate(const query::Query& query,
                                            const query::Predicate& pred) {
  (void)query;
  const catalog::TableInfo& info = schema_.table(pred.table_id);
  const storage::Table& table = db_.table(info.name);
  const auto& sample = stats_.sample_rows(pred.table_id);
  if (sample.empty()) return 0.0;
  const storage::Column& col = table.column(static_cast<size_t>(pred.column_idx));
  std::unordered_set<int64_t> contains;
  const std::unordered_set<int64_t>* contains_ptr = nullptr;
  if (pred.op == query::PredOp::kContains) {
    contains = engine::ContainsCodeSet(col, pred.value_str);
    contains_ptr = &contains;
  }
  size_t hits = 0;
  for (uint32_t row : sample) {
    if (engine::MatchesPredicate(pred, col.CodeAt(row), contains_ptr)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sample.size());
}

double SamplingEstimator::EstimateBase(const query::Query& query, int table_id) {
  // Evaluate the full conjunction on the sample: captures intra-table
  // correlation between predicates, unlike the histogram estimator.
  const catalog::TableInfo& info = schema_.table(table_id);
  const storage::Table& table = db_.table(info.name);
  const auto& sample = stats_.sample_rows(table_id);
  const double rows = static_cast<double>(stats_.table_rows(table_id));
  const auto preds = query.PredicatesOn(table_id);
  if (preds.empty() || sample.empty()) return std::max(rows, 1e-3);

  size_t hits = 0;
  for (uint32_t row : sample) {
    bool all = true;
    for (const query::Predicate& p : preds) {
      const storage::Column& col = table.column(static_cast<size_t>(p.column_idx));
      std::unordered_set<int64_t> contains;
      const std::unordered_set<int64_t>* contains_ptr = nullptr;
      if (p.op == query::PredOp::kContains) {
        contains = engine::ContainsCodeSet(col, p.value_str);
        contains_ptr = &contains;
      }
      if (!engine::MatchesPredicate(p, col.CodeAt(row), contains_ptr)) {
        all = false;
        break;
      }
    }
    if (all) ++hits;
  }
  // Zero sample hits: fall back to a half-row floor (sampling can miss rare
  // values; commercial systems use similar floors).
  const double sel = hits == 0
                         ? 0.5 / static_cast<double>(sample.size())
                         : static_cast<double>(hits) / static_cast<double>(sample.size());
  return std::max(rows * sel, 1e-3);
}

double TrueCardEstimator::EstimatePredicate(const query::Query& query,
                                            const query::Predicate& pred) {
  // Exact single-predicate selectivity via direct evaluation (uncached: the
  // probe query is a temporary, so it must not enter the oracle's
  // pointer-keyed caches).
  query::Query probe;
  probe.id = query.id;
  probe.relations = {pred.table_id};
  probe.predicates = {pred};
  const double rows = static_cast<double>(oracle_->TableRows(pred.table_id));
  if (rows == 0) return 0.0;
  const engine::Selection sel = engine::EvaluatePredicates(
      oracle_->db(), oracle_->schema(), probe, pred.table_id);
  return static_cast<double>(sel.count) / rows;
}

double ErrorInjectingEstimator::Perturb(double value, uint64_t key) const {
  if (error_orders_ <= 0.0) return value;
  const uint64_t h = util::HashCombine(seed_, key);
  const double sign = (h & 1) ? 1.0 : -1.0;
  return value * std::pow(10.0, sign * error_orders_);
}

double ErrorInjectingEstimator::EstimateBase(const query::Query& query, int table_id) {
  return Perturb(inner_->EstimateBase(query, table_id),
                 util::HashCombine(static_cast<uint64_t>(query.id),
                                   static_cast<uint64_t>(table_id) + 0x51ULL));
}

double ErrorInjectingEstimator::EstimateSubset(const query::Query& query,
                                               uint64_t mask) {
  return Perturb(inner_->EstimateSubset(query, mask),
                 util::HashCombine(static_cast<uint64_t>(query.id), mask));
}

}  // namespace neo::optim
