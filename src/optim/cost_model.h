// Hand-crafted cost model for the classical optimizers (the component Neo
// replaces with its value network, Table 1 of the paper). Structurally
// similar to the engine's latency model but driven by *estimated*
// cardinalities — so its plan choices inherit the estimator's errors, exactly
// the failure mode the paper describes. The weights come from the engine
// profile (vendors tune cost models to their engines), but the model is
// intentionally simpler than the engine: it does not know about
// preferred-order index sweeps and trusts the inclusion formula for
// per-probe match counts.
#pragma once

#include "src/engine/engine_profile.h"
#include "src/optim/card_estimator.h"
#include "src/plan/plan.h"

namespace neo::optim {

class CostModel {
 public:
  CostModel(const catalog::Schema& schema, const engine::EngineProfile& profile,
            CardinalityEstimator* estimator)
      : schema_(schema), profile_(profile), estimator_(estimator) {}

  /// Estimated cost (work units) of a complete or partial plan tree.
  double CostTree(const query::Query& query, const plan::PlanNode& node) const;

  /// Cost of a full plan (sums the forest).
  double CostPlan(const query::Query& query, const plan::PartialPlan& plan) const;

  CardinalityEstimator* estimator() const { return estimator_; }

 private:
  struct NodeCost {
    double out_card = 0.0;
    double work = 0.0;
    int sorted_gid = -1;
  };
  NodeCost CostNode(const query::Query& query, const plan::PlanNode& node) const;

  const catalog::Schema& schema_;
  const engine::EngineProfile& profile_;
  CardinalityEstimator* estimator_;
};

}  // namespace neo::optim
